"""Cross-call memoization of contract traces.

Contract emulation is deterministic: ``Contract(Prog, Data) -> CTrace``
is a pure function of the program text, the input assignment and the
contract parameters, so its results can be memoized safely.
:class:`ContractTraceCache` is a bounded in-memory LRU map from
``(program fingerprint, input identity, contract key)`` to the
``(CTrace, ExecutionLog)`` pair produced by
:meth:`Contract.collect_trace_and_log`; :class:`PersistentTraceCache`
adds an on-disk tier shared by every process pointed at the same
directory (campaign shard workers, neighboring sweep cells, repeated
runs). The full key/eviction/persistence contract is documented in
``docs/campaigns-and-sweeps.md``; the short version:

- keys include the nesting depth (:attr:`Contract.cache_key`), so the
  §5.4 revalidation never collides with the base model, and program
  fingerprints are namespaced by architecture;
- the memory tier evicts least-recently-used entries at ``max_entries``;
- the disk tier is crash-safe: entries are written to a temporary file
  and published with an atomic ``os.replace``, so concurrent shard
  writers can never expose a torn entry;
- the disk tier is append-only by default, but a size bound
  (``max_bytes``) arms a garbage collector that evicts
  least-recently-used entries (by file mtime; disk hits refresh it)
  under the same atomic discipline — an evicted entry degrades to a
  cache miss for concurrent readers, never to a torn read.

Knobs (also exposed on :class:`repro.core.config.FuzzerConfig` and the
CLI as ``--cache`` / ``--cache-entries`` / ``--cache-dir`` /
``--cache-max-bytes``):

- ``max_entries`` bounds memory; the default of 65536 entries
  comfortably covers a postprocessor run (one program family x a few
  hundred inputs);
- ``cache_dir`` (``trace_cache_dir``) selects the persistent backend;
- ``max_bytes`` (``trace_cache_max_bytes``) bounds the persistent
  backend's disk footprint;
- ``compress`` (``trace_cache_compress`` / ``--cache-compress``)
  zlib-compresses stored entries — reads stay transparent to legacy
  uncompressed entries (and vice versa), and the GC accounting sees
  the compressed sizes, so a bounded tier holds more entries.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import faults
from repro.faults import RetryPolicy
from repro.isa.instruction import TestCaseProgram
from repro.emulator.compiled import program_digest
from repro.emulator.state import InputData
from repro.contracts.contract import Contract
from repro.traces import CTrace, ExecutionLog

#: (program fingerprint, input seed, input content hash, contract key)
CacheKey = Tuple[str, Optional[int], str, Tuple[str, int, int]]

TraceEntry = Tuple[CTrace, ExecutionLog]


def program_fingerprint(program: TestCaseProgram, arch_name: str = "") -> str:
    """A stable content fingerprint of a test case.

    Two programs with the same block structure and instruction text have
    identical semantics under every contract *within one architecture*,
    so block names plus instruction text are the right identity for
    memoization (clones share it; any mutation — removed instruction,
    inserted fence — changes it). ``arch_name`` namespaces the
    fingerprint so same-text programs of different backends (e.g. a
    NOP-only program) can never collide.

    The same identity also keys the process-global compiled-IR cache,
    so this delegates to :func:`repro.emulator.compiled.program_digest`
    — one definition, one hash per program per call site.
    """
    return program_digest(program, arch_name)


def input_identity(input_data: InputData) -> Tuple[Optional[int], str]:
    """Identity of one input: its PRNG seed plus a content digest.

    The seed alone is not sufficient — handwritten inputs share
    ``seed=None`` and generator seeds only determine the content for one
    (layout, register pool, entropy) combination — so the content digest
    always participates. A cryptographic digest (like the program side)
    rather than Python's salted 64-bit ``hash()``: a silent collision
    here would hand the analyzer a wrong trace, and sha1 is also stable
    across processes.
    """
    hasher = hashlib.sha1()
    for name, value in sorted(input_data.registers.items()):
        hasher.update(f"{name}={value:#x};".encode("utf-8"))
    hasher.update(b"|")
    for flag, value in sorted(input_data.flags.items()):
        hasher.update(f"{flag}={int(value)};".encode("utf-8"))
    hasher.update(b"|")
    hasher.update(input_data.memory)
    return (input_data.seed, hasher.hexdigest())


@dataclass
class CacheStats:
    """Hit/miss accounting; every hit is one skipped contract emulation."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: subset of ``hits`` served from the on-disk tier — i.e. results
    #: computed by another process (or an earlier run) of the same cache
    #: directory. Always 0 for the purely in-memory cache.
    disk_hits: int = 0
    #: entries published to the on-disk tier by this process
    disk_writes: int = 0
    #: publications (or GC passes) that failed with an ``OSError``
    #: (ENOSPC, EACCES, ...) after retries — each one is a skipped
    #: memoization, never a fuzzing-loop error
    disk_write_errors: int = 0
    #: garbage-collection passes this process ran over the disk tier
    gc_runs: int = 0
    #: disk entries evicted by this process's GC passes
    gc_evicted_entries: int = 0
    #: bytes reclaimed by this process's GC passes
    gc_evicted_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        disk = (
            f", {self.disk_hits} from disk" if self.disk_hits else ""
        )
        return (
            f"{self.hits} hits / {self.lookups} lookups "
            f"({self.hit_rate:.0%}){disk}, {self.evictions} evictions"
        )


class ContractTraceCache:
    """A bounded LRU cache of contract-trace collection results."""

    def __init__(self, max_entries: int = 65536):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, TraceEntry]" = OrderedDict()

    def key(
        self,
        program_fp: str,
        input_data: InputData,
        contract: Contract,
    ) -> CacheKey:
        """Build the cache key for one (program, input, contract) triple."""
        seed, content = input_identity(input_data)
        return (program_fp, seed, content, contract.cache_key)

    def get(self, key: CacheKey) -> Optional[TraceEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def peek(self, key: CacheKey) -> bool:
        """Is the key present? No stats, no LRU movement.

        The battery-batched collection pre-screens its inputs with this
        so only the cache-missing lanes are emulated, then replays the
        per-input ``get``/``put`` protocol — which must see the exact
        hit/miss sequence the per-input loop would have, so the peek
        itself cannot touch the counters or the recency order.
        """
        return key in self._entries

    def put(self, key: CacheKey, entry: TraceEntry) -> None:
        self._remember(key, entry)

    def _remember(self, key: CacheKey, entry: TraceEntry) -> None:
        """Insert into the in-memory LRU tier only."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def key_digest(key: CacheKey) -> str:
    """Stable hex digest of a cache key, usable as a file name.

    ``repr`` of the key tuple is deterministic across processes (the
    components are strings, ints and tuples thereof — no salted
    ``hash()`` participates), so sibling shard processes derive the same
    file name for the same (program, input, contract) triple.
    """
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()


class PersistentTraceCache(ContractTraceCache):
    """A two-tier trace cache: in-memory LRU over an on-disk store.

    The disk tier lives in ``cache_dir`` (one pickle file per entry,
    fanned out over 256 subdirectories by digest prefix) and is shared
    by *every* process pointed at the same directory — campaign shard
    workers, neighboring sweep cells with the same ``(arch, contract)``
    pair, and later runs. Safety under concurrent writers comes from
    atomic publication: an entry is pickled to a ``tempfile`` in the
    target directory and moved into place with ``os.replace``, so a
    reader either sees a complete entry or none. Racing writers of the
    same key publish identical bytes (contract emulation is
    deterministic), so last-writer-wins is harmless.

    The disk tier is append-only by default (no cross-process eviction
    protocol; :meth:`clear` drops the memory tier only and
    :meth:`clear_disk` deletes the stored entries), but ``max_bytes``
    arms a size-bounded garbage collector: whenever this process's
    accounting sees the tier exceed the bound, :meth:`gc` rescans the
    directory and evicts least-recently-used entries — by file mtime,
    which disk hits refresh — until the footprint is back under the
    bound (with headroom, so a hot writer does not rescan on every
    publication). Eviction is a plain ``unlink`` under the existing
    atomic-publication discipline: a concurrent reader of an evicted
    entry sees a miss and re-emulates, never a torn read, and a racing
    re-publication of the same key is harmless (identical bytes).
    Unreadable files (torn by a crash, or written by an incompatible
    version) are treated as misses and deleted best-effort.
    """

    #: format version prefix of stored entries; bump on layout changes
    FORMAT = 1
    #: magic prefix of zlib-compressed entries. Uncompressed entries are
    #: raw pickles, which (at ``HIGHEST_PROTOCOL``, the only protocol we
    #: write) always start with ``b"\\x80"`` — so the two containers are
    #: unambiguous and readers stay transparent to either encoding.
    COMPRESSED_MAGIC = b"RZTC\x01"
    #: fraction of ``max_bytes`` a GC pass evicts down to — the headroom
    #: that keeps a hot writer from rescanning the directory per put
    GC_TARGET_FRACTION = 0.75
    #: age (seconds) under which an orphaned ``.tmp-`` file is presumed
    #: to belong to an in-flight writer and is left alone by the GC
    TMP_GRACE_SECONDS = 300.0
    #: consecutive publication failures after which the disk tier stops
    #: attempting writes for the rest of the process (a full or
    #: read-only disk is not going to heal mid-campaign; reads and the
    #: memory tier keep working)
    DEGRADE_AFTER = 8
    #: transient-error retry for publications: two quick tries, then
    #: the failure is counted and the entry simply not persisted
    WRITE_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.05)

    def __init__(
        self,
        cache_dir: str,
        max_entries: int = 65536,
        max_bytes: Optional[int] = None,
        compress: bool = False,
        write_retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(max_entries)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.cache_dir = os.fspath(cache_dir)
        self.max_bytes = max_bytes
        #: zlib-compress newly published entries. Reads are transparent
        #: in both directions: a compressed cache reads legacy
        #: uncompressed entries and vice versa, so the knob can be
        #: toggled on a live cache directory at any time. Compressed
        #: sizes are what the ``max_bytes`` GC accounting sees, so a
        #: compressed cache holds proportionally more entries under the
        #: same bound.
        self.compress = bool(compress)
        #: disk footprint as of the last scan plus this process's writes
        #: since; ``None`` until the first scan
        self._disk_bytes: Optional[int] = None
        self.write_retry = (
            write_retry if write_retry is not None else self.WRITE_RETRY
        )
        self._consecutive_write_failures = 0
        os.makedirs(self.cache_dir, exist_ok=True)

    @property
    def disk_degraded(self) -> bool:
        """True once :attr:`DEGRADE_AFTER` consecutive publications
        failed and the tier gave up writing for this process."""
        return self._consecutive_write_failures >= self.DEGRADE_AFTER

    def _path(self, key: CacheKey) -> str:
        digest = key_digest(key)
        return os.path.join(self.cache_dir, digest[:2], digest + ".trace")

    def get(self, key: CacheKey) -> Optional[TraceEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._remember(key, entry)
            return entry
        self.stats.misses += 1
        return None

    def peek(self, key: CacheKey) -> bool:
        """Key present in either tier? No stats, no LRU, no mtime touch.

        A racing GC can evict a peeked disk entry before the follow-up
        ``get`` — callers must treat a peek-hit/get-miss pair as an
        ordinary miss (the battery replay falls back to one per-input
        emulation).
        """
        if key in self._entries:
            return True
        return os.path.exists(self._path(key))

    def put(self, key: CacheKey, entry: TraceEntry) -> None:
        self._remember(key, entry)
        self._disk_put(key, entry)

    def _disk_get(self, key: CacheKey) -> Optional[TraceEntry]:
        path = self._path(key)
        try:
            faults.inject_oserror("trace_cache.read")
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            # missing or unreadable: a miss. Never discard here — a
            # transient EIO must not delete an intact entry.
            return None
        try:
            if blob.startswith(self.COMPRESSED_MAGIC):
                blob = zlib.decompress(blob[len(self.COMPRESSED_MAGIC):])
            version, stored_key, entry = pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError, zlib.error):
            # torn or incompatible entry: a miss, not an error
            self._discard(path)
            return None
        if version != self.FORMAT or stored_key != key:
            # format drift, or a digest collision (store the full key so
            # a collision degrades to a miss instead of a wrong trace)
            return None
        if self.max_bytes is not None:
            # refresh the mtime so the GC's LRU order tracks use, not
            # just publication
            try:
                os.utime(path)
            except OSError:
                pass
        return entry

    def _disk_put(self, key: CacheKey, entry: TraceEntry) -> None:
        if self.disk_degraded:
            return  # tier gave up after repeated ENOSPC/EACCES failures
        path = self._path(key)
        if os.path.exists(path):
            return  # another process already published this entry
        try:
            blob = pickle.dumps((self.FORMAT, key, entry),
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable entry: a skipped memoization
        if self.compress:
            blob = self.COMPRESSED_MAGIC + zlib.compress(blob)
        try:
            size = self.write_retry.call(
                lambda: self._publish_entry(path, blob)
            )
        except OSError:
            # ENOSPC/EACCES after retries: count it and keep fuzzing —
            # a failed publication is a skipped memoization, never a
            # fuzzing-loop error
            self.stats.disk_write_errors += 1
            self._consecutive_write_failures += 1
            return
        self._consecutive_write_failures = 0
        self.stats.disk_writes += 1
        if self.max_bytes is not None:
            self._account_write(size)

    def _publish_entry(self, path: str, blob: bytes) -> int:
        """One atomic-publish attempt; raises ``OSError`` on failure."""
        faults.inject_oserror("trace_cache.write")
        # a torn-write fault publishes a truncated blob: readers must
        # treat it as a miss and discard it, never crash on it
        blob = faults.corrupt("trace_cache.torn", blob)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", dir=directory
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)  # atomic publication
        except BaseException:
            self._discard(tmp_path)
            raise
        return len(blob)

    def _account_write(self, size: int) -> None:
        """Track this process's disk footprint; trigger the GC on
        overflow. Sibling writers are accounted at every rescan, so the
        bound is enforced cooperatively: each process trims as soon as
        its own view of the footprint exceeds the limit."""
        if self._disk_bytes is None:
            self.gc()  # first bounded write: scan (and trim) the tier
            return
        self._disk_bytes += size
        if self._disk_bytes > self.max_bytes:
            self.gc()

    def _scan_disk(self) -> Tuple[List[Tuple[float, int, str]], int]:
        """(mtime, size, path) of every stored entry, plus total bytes.
        Also sweeps ``.tmp-`` orphans past the in-flight grace age."""
        now = time.time()
        entries: List[Tuple[float, int, str]] = []
        total = 0
        for root, _dirs, files in os.walk(self.cache_dir):
            for name in files:
                path = os.path.join(root, name)
                if name.startswith(".tmp-"):
                    try:
                        age = now - os.path.getmtime(path)
                    except OSError:
                        continue
                    if age > self.TMP_GRACE_SECONDS:
                        self._discard(path)  # orphan of a killed writer
                    continue
                if not name.endswith(".trace"):
                    continue
                try:
                    status = os.stat(path)
                except OSError:
                    continue  # evicted by a concurrent GC mid-walk
                entries.append((status.st_mtime, status.st_size, path))
                total += status.st_size
        return entries, total

    def gc(self, max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Size-bounded disk GC: evict LRU entries until under the bound.

        Scans the tier, then — when the footprint exceeds ``max_bytes``
        (argument, or the instance bound) — unlinks entries oldest-mtime
        first until the footprint is at or below
        ``max_bytes * GC_TARGET_FRACTION``. Safe under concurrent
        readers and writers: an evicted entry degrades to a miss, a
        concurrently-evicted file is skipped. Returns
        ``(entries evicted, bytes reclaimed)``.
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        try:
            faults.inject_oserror("trace_cache.gc")
            entries, total = self._scan_disk()
        except OSError:
            # an unscannable tier (unmounted, EACCES, ...) degrades to a
            # skipped GC pass, never a mid-campaign crash; the next
            # write-triggered pass retries
            self.stats.disk_write_errors += 1
            self.stats.gc_runs += 1
            return 0, 0
        evicted = 0
        freed = 0
        if limit is not None and total > limit:
            target = int(limit * self.GC_TARGET_FRACTION)
            entries.sort()  # oldest mtime first == least recently used
            for _mtime, size, path in entries:
                if total <= target:
                    break
                self._discard(path)
                total -= size
                evicted += 1
                freed += size
        self._disk_bytes = total
        self.stats.gc_runs += 1
        self.stats.gc_evicted_entries += evicted
        self.stats.gc_evicted_bytes += freed
        return evicted, freed

    def disk_usage_bytes(self) -> int:
        """Current disk footprint of the stored entries (full scan)."""
        _entries, total = self._scan_disk()
        return total

    def known_disk_bytes(self) -> Optional[int]:
        """Footprint as of the last scan plus this process's writes
        since — scan-free; ``None`` before the first scan. Exact right
        after :meth:`gc` (callers avoid a second directory walk)."""
        return self._disk_bytes

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def clear_disk(self) -> None:
        """Delete every stored entry, including temp files orphaned by
        killed writers (leaves the directory tree in place)."""
        for root, _dirs, files in os.walk(self.cache_dir):
            for name in files:
                if name.endswith(".trace") or name.startswith(".tmp-"):
                    self._discard(os.path.join(root, name))
        self._disk_bytes = 0 if self.max_bytes is not None else None

    def disk_entries(self) -> int:
        """Number of entries currently stored on disk."""
        return sum(
            1
            for _root, _dirs, files in os.walk(self.cache_dir)
            for name in files
            if name.endswith(".trace")
        )


def make_trace_cache(
    enabled: bool,
    cache_dir: Optional[str],
    max_entries: int,
    max_bytes: Optional[int] = None,
    compress: bool = False,
) -> Optional[ContractTraceCache]:
    """Build the cache a pipeline's config asks for (or ``None``).

    ``cache_dir`` implies caching even when the boolean knob is off —
    pointing a run at a directory is an explicit opt-in. ``max_bytes``
    arms the persistent tier's garbage collector; ``compress``
    zlib-compresses its entries (reads stay transparent to legacy
    uncompressed entries).
    """
    if cache_dir:
        return PersistentTraceCache(cache_dir, max_entries, max_bytes,
                                    compress)
    if enabled:
        return ContractTraceCache(max_entries)
    return None


__all__ = [
    "CacheKey",
    "CacheStats",
    "ContractTraceCache",
    "PersistentTraceCache",
    "input_identity",
    "key_digest",
    "make_trace_cache",
    "program_fingerprint",
]
