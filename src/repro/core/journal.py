"""Atomic completed-shard journal for checkpointed, resumable campaigns.

A journal is a directory holding one ``spec.json`` describing the
campaign (or sweep) it belongs to, plus one record file per completed
shard.  Every file is published with the same
``mkstemp`` -> write -> ``os.replace`` discipline as
``PersistentTraceCache`` and ``repro.corpus``: a reader never observes
a half-written record, and a worker killed mid-write leaves at worst a
stale temp file, never a torn journal entry.

The spec file pins a digest of everything that determines shard
results (resolved shard count, mode, and the result-determining
``FuzzerConfig`` fields).  Resuming against a journal whose digest
does not match the requested spec is a hard :class:`JournalMismatch`
error — silently re-running a different campaign over someone else's
checkpoints would corrupt the merged report.  Records carry the same
digest plus their (cell, shard) coordinates; anything unreadable,
foreign, or out of range is treated as missing and simply re-run,
mirroring how torn corpus records degrade to SKIP.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import faults
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import FuzzingReport

SCHEMA_VERSION = 1
SPEC_FILE = "spec.json"
_RECORD_PREFIX = "shard-"
_RECORD_SUFFIX = ".pkl"

# FuzzerConfig fields that do not influence shard results: the
# determinism contracts (docs/performance.md, docs/corpus.md) pin that
# reports are byte-identical across these knobs, and cache/corpus
# plumbing is side-channel state.  Excluding them means a resume may
# legally flip e.g. --no-battery-eval without invalidating checkpoints.
EXCLUDED_CONFIG_FIELDS = frozenset(
    {
        "compile_programs",
        "optimize_dead_flags",
        "optimize_masked_access",
        "battery_eval",
        "batch_measurements",
        "contract_trace_cache",
        "trace_cache_entries",
        "trace_cache_dir",
        "trace_cache_max_bytes",
        "trace_cache_compress",
        "corpus_dir",
    }
)


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different campaign spec."""


def canonical_spec_json(payload: Mapping[str, Any]) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def spec_digest(payload: Mapping[str, Any]) -> str:
    return hashlib.sha1(canonical_spec_json(payload).encode("utf-8")).hexdigest()


def config_payload(config: FuzzerConfig) -> Dict[str, Any]:
    """The result-determining slice of a FuzzerConfig, JSON-ready."""
    data = dataclasses.asdict(config)
    for field in EXCLUDED_CONFIG_FIELDS:
        data.pop(field, None)
    return data


def campaign_payload(
    config: FuzzerConfig, shards: int, mode: str
) -> Dict[str, Any]:
    return {
        "kind": "campaign",
        "shards": shards,
        "mode": mode,
        "config": config_payload(config),
    }


def sweep_payload(spec: Any, shards: int) -> Dict[str, Any]:
    """Journal spec for a SweepSpec (typed loosely to avoid an import
    cycle with core.sweep)."""
    return {
        "kind": "sweep",
        "arches": list(spec.arches),
        "contracts": list(spec.contracts),
        "cpus": list(spec.cpus),
        "shards": shards,
        "mode": spec.mode,
        "total_budget": spec.total_budget,
        "budget_overrides": sorted(
            [list(key), value] for key, value in spec.budget_overrides.items()
        ),
        "config": config_payload(spec.base_config),
    }


class CampaignJournal:
    """Completed-shard checkpoint directory for one campaign/sweep."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.digest: Optional[str] = None
        #: record publications that failed with an ``OSError`` and were
        #: skipped — the shard result stays in memory and the campaign
        #: continues, it just isn't checkpointed (a later resume re-runs
        #: that shard)
        self.publish_errors = 0

    # -- lifecycle ----------------------------------------------------

    def open(self, payload: Mapping[str, Any], resume: bool = False) -> None:
        """Bind the journal to ``payload``.

        Creates the directory and spec file for a fresh journal;
        validates the digest against an existing one.  With
        ``resume=True`` the spec file must already exist — resuming a
        journal that was never started is a spelling mistake, not a
        campaign.
        """
        digest = spec_digest(payload)
        spec_path = os.path.join(self.directory, SPEC_FILE)
        if os.path.exists(spec_path):
            try:
                with open(spec_path, "r", encoding="utf-8") as handle:
                    existing = json.load(handle)
            except (OSError, ValueError) as error:
                raise JournalMismatch(
                    f"journal spec {spec_path} is unreadable: {error}"
                )
            if existing.get("schema") != SCHEMA_VERSION:
                raise JournalMismatch(
                    f"journal {self.directory} uses schema "
                    f"{existing.get('schema')!r}, expected {SCHEMA_VERSION}"
                )
            if existing.get("digest") != digest:
                raise JournalMismatch(
                    f"journal {self.directory} records a different campaign "
                    f"spec (journal digest {existing.get('digest')}, "
                    f"requested {digest}); refusing to mix checkpoints"
                )
        elif resume:
            raise JournalMismatch(
                f"cannot resume: {spec_path} does not exist "
                "(was this campaign ever started with a journal?)"
            )
        else:
            os.makedirs(self.directory, exist_ok=True)
            self._publish(
                SPEC_FILE,
                json.dumps(
                    {
                        "schema": SCHEMA_VERSION,
                        "digest": digest,
                        "spec": payload,
                    },
                    sort_keys=True,
                    indent=2,
                    default=str,
                ).encode("utf-8"),
            )
        self.digest = digest

    # -- records ------------------------------------------------------

    @staticmethod
    def record_name(cell_index: int, shard_index: int) -> str:
        return f"{_RECORD_PREFIX}{cell_index:04d}-{shard_index:04d}{_RECORD_SUFFIX}"

    def record(
        self, cell_index: int, shard_index: int, report: FuzzingReport
    ) -> bool:
        """Checkpoint one completed shard; returns False when the
        publication failed with an ``OSError`` (disk full, read-only
        journal, ...) and was skipped.

        A failed checkpoint must never fail the campaign: the shard
        report is already merged in memory, so losing the record only
        costs a re-run of that shard on a *later* resume — exactly the
        degradation a torn record already has.
        """
        if self.digest is None:
            raise RuntimeError("journal must be opened before recording")
        payload = {
            "schema": SCHEMA_VERSION,
            "digest": self.digest,
            "cell": cell_index,
            "shard": shard_index,
            "report": report,
        }
        try:
            faults.inject_oserror("journal.publish")
            self._publish(
                self.record_name(cell_index, shard_index),
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError:
            self.publish_errors += 1
            return False
        return True

    def completed(self) -> Dict[Tuple[int, int], FuzzingReport]:
        """All valid checkpoints, keyed by (cell, shard).

        Torn, foreign, or mislabeled record files are skipped — the
        corresponding shard is simply re-run.
        """
        if self.digest is None:
            raise RuntimeError("journal must be opened before reading")
        out: Dict[Tuple[int, int], FuzzingReport] = {}
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return out
        for name in names:
            if not (
                name.startswith(_RECORD_PREFIX)
                and name.endswith(_RECORD_SUFFIX)
            ):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
            except Exception:
                continue  # torn or foreign: re-run that shard
            if not isinstance(payload, dict):
                continue
            if payload.get("schema") != SCHEMA_VERSION:
                continue
            if payload.get("digest") != self.digest:
                continue
            cell = payload.get("cell")
            shard = payload.get("shard")
            report = payload.get("report")
            if not isinstance(cell, int) or not isinstance(shard, int):
                continue
            if not isinstance(report, FuzzingReport):
                continue
            if name != self.record_name(cell, shard):
                continue  # renamed/copied record: coordinates lie
            out[(cell, shard)] = report
        return out

    # -- plumbing -----------------------------------------------------

    def _publish(self, name: str, blob: bytes) -> None:
        """Atomic write: readers see the old file or the new one."""
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.chmod(temp_path, 0o644)
            os.replace(temp_path, os.path.join(self.directory, name))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
