"""Model-based Relational Testing (MRT): the paper's core contribution.

The pipeline (paper Figure 2): a test-case generator samples programs, an
input generator samples architectural states, the contract model produces
contract traces, the executor produces hardware traces, and the relational
analyzer partitions inputs into contract-equivalence classes and flags any
class whose members disagree on hardware traces — a counterexample
witnessing a contract violation. Diversity analysis (pattern coverage)
widens the generator configuration between rounds, and the postprocessor
minimizes counterexamples.
"""

from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.input_gen import InputGenerator
from repro.core.generator import TestCaseGenerator
from repro.core.analyzer import (
    AnalysisResult,
    InputClass,
    RelationalAnalyzer,
    ViolationCandidate,
)
from repro.core.patterns import (
    ALL_PATTERNS,
    PatternCoverage,
    patterns_in_log,
)
from repro.core.violation import Violation, classify_speculation_kinds
from repro.core.fuzzer import Fuzzer, FuzzingReport, TestingPipeline
from repro.core.postprocessor import MinimizationResult, Postprocessor
from repro.core.trace_cache import ContractTraceCache, program_fingerprint
from repro.core.campaign import (
    CampaignReport,
    CampaignRunner,
    run_campaign,
)
from repro.core.sweep import (
    SweepCell,
    SweepReport,
    SweepRunner,
    SweepSpec,
    run_sweep,
)

__all__ = [
    "ALL_PATTERNS",
    "AnalysisResult",
    "CampaignReport",
    "CampaignRunner",
    "ContractTraceCache",
    "Fuzzer",
    "FuzzerConfig",
    "FuzzingReport",
    "GeneratorConfig",
    "InputClass",
    "InputGenerator",
    "MinimizationResult",
    "PatternCoverage",
    "Postprocessor",
    "RelationalAnalyzer",
    "SweepCell",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "TestCaseGenerator",
    "TestingPipeline",
    "Violation",
    "ViolationCandidate",
    "classify_speculation_kinds",
    "patterns_in_log",
    "program_fingerprint",
    "run_campaign",
    "run_sweep",
]
