"""Configuration dataclasses for the generator and the fuzzer.

The defaults follow the paper's experimental configuration (§6.1):
generation starts from 8 instructions, 2 memory accesses and 2 basic
blocks per test case, 2 bits of input entropy, and 50 inputs per test
case; the parameters grow over testing rounds under diversity feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.uarch.config import UarchConfig


@dataclass(frozen=True)
class GeneratorConfig:
    """Test-case generator parameters (paper §5.1)."""

    instructions_per_test: int = 8
    basic_blocks: int = 2
    memory_accesses: int = 2
    #: the generator uses only a handful of registers to improve input
    #: effectiveness (§5.1: four registers); ``None`` means the target
    #: architecture's default pool (RAX-RDX on x86-64, X0-X3 on AArch64)
    register_pool: Optional[Tuple[str, ...]] = None
    #: number of 4KB sandbox pages generated accesses may touch
    sandbox_pages: int = 1
    #: accesses are cache-line (64B) aligned, then offset by a random value
    #: in [0, 64) chosen per test case (§5.1)
    randomize_offset: bool = True

    def grown(self) -> "GeneratorConfig":
        """The next diversity-feedback step (§5.6: sizes grow by constant
        factors, e.g. 10/2/50 -> 15/3/75)."""
        return replace(
            self,
            instructions_per_test=max(
                self.instructions_per_test + 1,
                int(self.instructions_per_test * 1.5),
            ),
            basic_blocks=self.basic_blocks + 1,
            memory_accesses=max(
                self.memory_accesses + 1, int(self.memory_accesses * 1.5)
            ),
        )


@dataclass(frozen=True)
class FuzzerConfig:
    """End-to-end fuzzing campaign configuration (one Table 2 target plus
    one contract)."""

    # what to test
    #: target ISA backend (see :func:`repro.arch.architecture_names`)
    arch: str = "x86_64"
    instruction_subsets: Tuple[str, ...] = ("AR", "MEM", "CB")
    contract_name: str = "CT-SEQ"
    #: either a preset name ("skylake", "skylake-v4-patched", "coffee-lake")
    #: or a full UarchConfig in ``cpu_config``
    cpu_preset: str = "skylake"
    cpu_config: Optional[UarchConfig] = None
    executor_mode: str = "P+P"

    # search budget
    num_test_cases: int = 1000
    timeout_seconds: Optional[float] = None
    inputs_per_test_case: int = 50

    # input generation (§5.2)
    entropy_bits: int = 2

    # generator (§5.1) and diversity feedback (§5.6)
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    diversity_feedback: bool = True
    round_size: int = 10  # test cases per round
    #: growth caps: reconfiguration stops widening once these are reached
    #: (the paper's 24h campaigns are implicitly bounded by wall clock)
    max_inputs_per_test_case: int = 150
    max_instructions_per_test: int = 48
    max_basic_blocks: int = 8

    # analysis (§5.5) and violation filtering (§5.3, §5.4)
    analyzer_mode: str = "subset"  # "subset" | "strict"
    #: cap on candidate pairs run through the expensive confirmation
    #: (priming swap = three full priming sequences) per test case
    max_candidates_per_test_case: int = 5
    verify_with_priming: bool = True
    revalidate_with_nesting: bool = True
    nesting_depth_for_revalidation: int = 3
    speculation_window: int = 250

    # execution engines
    #: lower each test case once into the compile-once program IR
    #: (:mod:`repro.emulator.compiled`) shared by the contract model and
    #: the speculative CPU; the interpretive per-step decode remains
    #: available behind ``False`` (bit-identical traces and reports
    #: either way — the equality tests and the emulation-throughput
    #: benchmark compare the two)
    compile_programs: bool = True
    #: run the dead-flag elimination pass (:mod:`repro.analysis.deadflags`)
    #: over each compiled program: flag computation proven dead by
    #: liveness is skipped. Byte-identical traces, logs and reports
    #: either way (the pass only replaces handlers whose flag writes
    #: can never be observed); only effective with ``compile_programs``
    optimize_dead_flags: bool = True
    #: run the masked-access fusion pass (:mod:`repro.analysis.fusion`)
    #: over each compiled program: the §5.1 sandbox-masking ops
    #: (``AND``/``ADD`` reg, imm feeding address generation) get direct
    #: register-file specializations. Byte-identical traces, logs and
    #: reports either way; only effective with ``compile_programs``
    optimize_masked_access: bool = True
    #: collect each test case's contract traces battery-batched
    #: (:mod:`repro.emulator.battery`): one plan dispatch per op per
    #: input battery, lanes split on divergence. Byte-identical traces,
    #: logs and reports either way — the per-input loop stays the
    #: referee and handles every fallback; only effective with
    #: ``compile_programs``
    battery_eval: bool = True

    # static leak pre-screen (repro.analysis.prescreen): classify each
    # generated test case before any emulation and skip the ones that
    # provably cannot violate under the configured contract + executor
    # mode. Off by default — enabling it changes which cases are
    # measured (and hence the diversity feedback), not any verdict about
    # a measured case.
    prescreen: bool = False
    #: safety sampling: still measure every Nth INERT-classified case;
    #: a confirmed violation on one of them is a soundness bug and
    #: raises :class:`repro.analysis.prescreen.PrescreenSoundnessError`.
    #: 0 disables sampling.
    prescreen_safety_rate: int = 20

    # measurement (§5.3)
    executor_repetitions: int = 3
    executor_warmups: int = 1
    outlier_threshold: int = 1
    #: collect hardware traces for the test cases of one diversity round
    #: in a single executor batch (linearization, noise calibration and
    #: side-channel dispatch amortized across the round) instead of one
    #: executor call per case. Deterministic campaigns produce the
    #: identical report either way; timed campaigns (``timeout_seconds``)
    #: and noise-injected executors always measure case by case (the
    #: clock must be checked, and the noise RNG stream must not be
    #: reordered, between test cases)
    batch_measurements: bool = True

    # contract-trace memoization (see repro.core.trace_cache): contract
    # traces are pure functions of (program, input, contract), so repeated
    # collections — nesting revalidation, postprocessor shrinking — can be
    # served from an LRU cache instead of re-emulating the model
    contract_trace_cache: bool = False
    #: LRU capacity of the trace cache when enabled
    trace_cache_entries: int = 65536
    #: directory of the persistent cross-process trace cache; setting it
    #: implies caching and shares results between campaign shard workers,
    #: sweep cells with the same (arch, contract) pair, and later runs
    trace_cache_dir: Optional[str] = None
    #: size bound (bytes) of the persistent tier's disk footprint; when
    #: set, a garbage collector evicts least-recently-used entries (by
    #: file mtime) whenever the tier outgrows the bound. None keeps the
    #: historical append-only behavior
    trace_cache_max_bytes: Optional[int] = None
    #: zlib-compress the persistent tier's disk entries; reads remain
    #: transparent to uncompressed legacy entries, and compressed sizes
    #: feed the ``trace_cache_max_bytes`` GC accounting
    trace_cache_compress: bool = False

    #: directory of the replayable counterexample corpus (see
    #: repro.corpus): when set, every confirmed violation a fuzzing run
    #: reports — and every minimized counterexample the postprocessor
    #: produces — is persisted there as a self-contained JSON record
    #: under the same atomic-publish discipline as the trace cache, so
    #: campaign shard workers and sweep cells can append concurrently.
    #: ``python -m repro replay`` re-runs the directory as a
    #: deterministic regression gate
    corpus_dir: Optional[str] = None

    seed: int = 0

    def resolve_cpu(self) -> UarchConfig:
        if self.cpu_config is not None:
            return self.cpu_config
        from repro.uarch.config import preset

        return preset(self.cpu_preset)

    def resolve_arch(self):
        """The :class:`~repro.arch.base.Architecture` backend under test."""
        from repro.arch import get_architecture

        return get_architecture(self.arch)


__all__ = ["FuzzerConfig", "GeneratorConfig"]
