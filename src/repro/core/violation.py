"""Violation reports and post-hoc classification.

A :class:`Violation` is a contract counterexample: a program, a priming
context (the full input sequence) and two inputs that agree on the
contract trace but disagree on hardware traces (paper §2.2).

Classification maps the speculation provenance recorded by the simulator
onto the vulnerability families the paper reports (V1, V2, V4, V5-ret,
MDS, LVI-Null). The paper does this step by manual inspection; here the
simulator's frame tags automate it. Classification is diagnostic only —
detection itself never looks inside the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.isa.instruction import TestCaseProgram
from repro.emulator.state import InputData
from repro.traces import CTrace, HTrace
from repro.uarch.config import UarchConfig


def classify_speculation_kinds(
    kinds: Set[str],
    cpu_config: UarchConfig,
    program_has_division: bool = False,
) -> str:
    """Name the vulnerability family behind a set of speculation-frame
    kinds observed while measuring the violating inputs."""
    labels: List[str] = []
    if "cond" in kinds:
        labels.append("V1-var" if program_has_division else "V1")
    if "bypass" in kinds:
        labels.append("V4-var" if program_has_division else "V4")
    if "indirect" in kinds:
        labels.append("V2")
    if "ret" in kinds:
        labels.append("V5-ret")
    if "assist" in kinds:
        labels.append("MDS" if cpu_config.assists_leak_stale_data else "LVI-Null")
    if not labels:
        return "unknown (no speculative accesses observed)"
    return "+".join(labels)


@dataclass
class Violation:
    """A confirmed contract counterexample ``(Prog, Ctx, Data, Data')``."""

    program: TestCaseProgram
    contract_name: str
    cpu_name: str
    ctrace: CTrace
    input_sequence: Sequence[InputData]
    position_a: int
    position_b: int
    htrace_a: HTrace
    htrace_b: HTrace
    classification: str = "unclassified"
    speculation_kinds: Set[str] = field(default_factory=set)
    test_cases_until_found: int = 0
    inputs_until_found: int = 0
    seconds_until_found: float = 0.0
    #: ISA backend the violating program targets (assembly syntax for
    #: :meth:`describe` is resolved through the architecture registry)
    arch_name: str = "x86_64"

    @property
    def input_a(self) -> InputData:
        return self.input_sequence[self.position_a]

    @property
    def input_b(self) -> InputData:
        return self.input_sequence[self.position_b]

    def describe(self) -> str:
        """Human-readable counterexample report."""
        from repro.arch import get_architecture

        render_program = get_architecture(self.arch_name).render_program
        lines = [
            f"contract violation: {self.contract_name} on {self.cpu_name} "
            f"({self.arch_name})",
            f"classified as: {self.classification}",
            f"found after {self.test_cases_until_found} test case(s), "
            f"{self.inputs_until_found} input(s), "
            f"{self.seconds_until_found:.2f}s",
            "",
            "test case:",
            render_program(self.program, numbered=True),
            "",
            f"inputs #{self.position_a} (seed={self.input_a.seed}) and "
            f"#{self.position_b} (seed={self.input_b.seed}) share the "
            f"contract trace but differ on hardware traces:",
            f"  {self.htrace_a.bitmap()}",
            f"  {self.htrace_b.bitmap()}",
        ]
        return "\n".join(lines)

    def differing_signals(self) -> Tuple[Set[int], Set[int]]:
        """Signals unique to each hardware trace (the leak's footprint)."""
        only_a = set(self.htrace_a.signals) - set(self.htrace_b.signals)
        only_b = set(self.htrace_b.signals) - set(self.htrace_a.signals)
        return only_a, only_b


__all__ = ["Violation", "classify_speculation_kinds"]
