"""Input generation with reduced PRNG entropy (paper §5.2).

An input assigns values to the generator's register pool, the FLAGS bits
and the memory sandbox. Values come from a seeded 32-bit PRNG whose output
is masked down to ``entropy_bits`` bits (then shifted to cache-line
granularity so that distinct values map to distinct cache sets). Lower
entropy raises *input effectiveness* — the probability that several inputs
collide on the same contract trace — at the cost of a smaller tested value
range, exactly the trade-off the paper describes.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.emulator.state import InputData, SandboxLayout

#: process-global memo of generated inputs. An input's content is a pure
#: function of (input seed, entropy, register pool, layout, flag
#: handling) — everything in the memo key — and :class:`InputData` is
#: frozen, so sharing instances is safe. Deterministic campaign shards
#: and sweep cells regenerate identical batteries (same config seeds) in
#: one worker process; the memo lets them share the InputData objects
#: instead of re-deriving register files and sandbox images per cell.
_INPUT_MEMO: "OrderedDict[tuple, InputData]" = OrderedDict()
_INPUT_MEMO_CAPACITY = 4096


@dataclass
class InputGenerator:
    """Seeded low-entropy input generator.

    ``registers`` and ``flag_bits`` default to the x86-64 backend's
    register pool and flag set; pass the target architecture's values
    (``arch.default_register_pool`` / ``arch.registers.flag_bits``) when
    fuzzing another backend.
    """

    seed: int = 0
    entropy_bits: int = 2
    registers: Optional[Sequence[str]] = None
    layout: SandboxLayout = field(default_factory=SandboxLayout)
    randomize_flags: bool = True
    flag_bits: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if not 1 <= self.entropy_bits <= 32:
            raise ValueError("entropy_bits must be in [1, 32]")
        if self.registers is None or self.flag_bits is None:
            from repro.arch import get_architecture

            default = get_architecture("x86_64")
            if self.registers is None:
                self.registers = default.default_register_pool
            if self.flag_bits is None:
                self.flag_bits = default.registers.flag_bits
        self._rng = random.Random(self.seed)

    def _value(self, rng: random.Random) -> int:
        """One masked PRNG value, in cache-line units (64B granularity)."""
        raw = rng.getrandbits(32)
        masked = raw & ((1 << self.entropy_bits) - 1)
        return masked << 6

    def generate_one(self, input_seed: Optional[int] = None) -> InputData:
        """Generate a single input (optionally from an explicit seed).

        The generator's own PRNG always advances (the input-seed draw
        comes first), so determinism is untouched by the memo below:
        content is re-derived only the first time a (seed, entropy,
        registers, layout, flags) combination is seen in this process.
        """
        seed = (
            input_seed if input_seed is not None else self._rng.getrandbits(32)
        )
        memo_key = (
            seed,
            self.entropy_bits,
            tuple(self.registers),
            self.layout,
            self.randomize_flags,
            tuple(self.flag_bits),
        )
        cached = _INPUT_MEMO.get(memo_key)
        if cached is not None:
            _INPUT_MEMO.move_to_end(memo_key)
            return cached
        rng = random.Random(seed)
        registers = {name: self._value(rng) for name in self.registers}
        flags = (
            {flag: bool(rng.getrandbits(1)) for flag in self.flag_bits}
            if self.randomize_flags
            else {}
        )
        memory = bytearray(self.layout.size)
        for offset in range(0, self.layout.size, 8):
            memory[offset : offset + 8] = self._value(rng).to_bytes(8, "little")
        input_data = InputData(
            registers=registers,
            flags=flags,
            memory=bytes(memory),
            seed=seed,
        )
        _INPUT_MEMO[memo_key] = input_data
        while len(_INPUT_MEMO) > _INPUT_MEMO_CAPACITY:
            _INPUT_MEMO.popitem(last=False)
        return input_data

    def generate(self, count: int) -> List[InputData]:
        """Generate a priming sequence of ``count`` pseudorandom inputs."""
        return [self.generate_one() for _ in range(count)]


def effectiveness(class_sizes: Sequence[int]) -> float:
    """Fraction of inputs that landed in non-singleton contract classes.

    This is the paper's *input effectiveness* metric (CH2): singleton
    classes are wasted effort because a lone input can never form a
    counterexample.
    """
    total = sum(class_sizes)
    if total == 0:
        return 0.0
    effective = sum(size for size in class_sizes if size >= 2)
    return effective / total


__all__ = ["InputGenerator", "effectiveness"]
