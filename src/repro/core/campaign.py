"""Parallel fuzzing campaigns: sharding the MRT loop across processes.

The testing loop is embarrassingly parallel across test cases — each
round generates, measures and analyzes one program independently — yet
:meth:`Fuzzer.run` is strictly sequential. :class:`CampaignRunner`
splits a campaign's test-case budget into *shards* and fans the shards
out over a pool of worker processes:

- **Deterministic sharding.** Shard ``i`` of a campaign with base seed
  ``s`` always fuzzes with ``derive_shard_seed(s, i)`` and a fixed slice
  of the budget (:func:`shard_budgets`), so for budget-bound campaigns
  (``timeout_seconds=None``, the default) the merged outcome depends
  only on the shard count — never on the worker count, scheduling, or
  whether the shards ran in-process or in a pool. ``workers=1`` runs the
  same shards inline and is the baseline of
  ``benchmarks/bench_campaign_scaling.py``.
- **Report merging.** Per-shard :class:`FuzzingReport`s are merged by
  :func:`merge_reports`: pattern coverage is unioned, counters are
  summed, effectiveness is test-case-weighted, and when several shards
  find violations the winner is first-violation-wins — the violation
  found after the fewest test cases — with a stable tie-break on
  (inputs until found, shard index).

Workers are plain ``multiprocessing`` processes (fork where available,
spawn otherwise); every shard builds its own :class:`Fuzzer`, so no
state is shared and no locks are needed. Shard results travel back as
pickled reports.

- **Early cancel.** ``mode="first-violation"`` stops the campaign at the
  first confirmed violation instead of draining the full budget: a
  shared cancel event is polled by every shard between measurement
  batches (at most one diversity round of test cases apart; every test
  case when ``batch_measurements`` is off), and the runner sets it as
  soon as a finished shard reports a violation. Shards that completed
  before the signal produce exactly the reports they would in
  ``mode="full"`` (deterministic merging for completed shards);
  cancelled shards return partial reports flagged ``cancelled``. How far an interrupted shard got depends on
  scheduling, so first-violation campaigns trade the full mode's
  merged-report invariance for wall-clock savings.

- **Checkpoint/resume.** With a ``journal_dir``, every completed shard
  report is published atomically to a :class:`~repro.core.journal.
  CampaignJournal`; ``resume=True`` replays the journaled shards and
  dispatches only the missing ones, so a campaign killed mid-run
  finishes with the exact merged report (and
  :meth:`CampaignReport.report_digest`) of an uninterrupted run.
  Journaling requires ``mode="full"`` — first-violation shard reports
  depend on cancel timing and are not replayable.

A wall-clock budget (``timeout_seconds``) bounds each *shard*
individually, so the campaign's wall time can reach ``timeout x
ceil(shards / workers)`` when workers are scarce — and because a
timed-out shard stops wherever the clock caught it, timed campaigns
trade the worker-count invariance above for the time bound: a run on
fewer cores breaks off at different test-case counts than one on many.
Budget-bound campaigns (``-n`` only) keep the full guarantee.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import Fuzzer, FuzzingReport
from repro.core.journal import CampaignJournal, campaign_payload
from repro.core.patterns import PatternCoverage
from repro.core.trace_cache import program_fingerprint
from repro.core.violation import Violation

_MASK64 = (1 << 64) - 1


class CampaignCancelled(RuntimeError):
    """A cooperative stop signal (job cancel, deadline expiry) fired
    before the campaign drained its budget.

    Raised by the campaign and sweep runners when the ``should_stop``
    callable threaded through :mod:`repro.api` returns True mid-run.
    Shards that completed before the signal keep their journal
    checkpoints, so a journaled campaign cancelled this way resumes
    exactly like one killed by the OS.
    """


def default_start_context():
    """The multiprocessing context the engines agree on: fork where the
    platform offers it (cheap, inherits the loaded catalog), spawn
    otherwise. One definition, shared by campaign and sweep runners."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def derive_shard_seed(base_seed: int, shard_index: int) -> int:
    """Deterministic, well-separated seed for one shard.

    A splitmix64 finalizer over ``(base_seed, shard_index)``: nearby base
    seeds or shard indices still yield uncorrelated PRNG streams, and the
    mapping is stable across runs, platforms and worker counts.
    """
    if shard_index < 0:
        raise ValueError("shard_index must be non-negative")
    x = (base_seed * 0x9E3779B97F4A7C15 + (shard_index + 1)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x & 0x7FFFFFFF


def shard_budgets(total: int, shards: int) -> List[int]:
    """Split ``total`` test cases into ``shards`` near-equal slices."""
    if shards <= 0:
        raise ValueError("shards must be positive")
    base, extra = divmod(max(0, total), shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def shard_fuzzer_config(
    config: FuzzerConfig, shard_index: int, shards: int
) -> FuzzerConfig:
    """The :class:`FuzzerConfig` one shard runs with."""
    budgets = shard_budgets(config.num_test_cases, shards)
    return replace(
        config,
        seed=derive_shard_seed(config.seed, shard_index),
        num_test_cases=budgets[shard_index],
    )


def _run_shard(task) -> Tuple[int, FuzzingReport]:
    """Worker entry point: run one shard's fuzzing campaign.

    ``task`` is ``(shard_index, config)`` or ``(shard_index, config,
    cancel_event)``; the event (a picklable ``multiprocessing.Manager``
    proxy) is polled between test cases for first-violation campaigns.
    """
    shard_index, config = task[0], task[1]
    cancel_event = task[2] if len(task) > 2 else None
    should_stop = cancel_event.is_set if cancel_event is not None else None
    return shard_index, Fuzzer(config).run(should_stop=should_stop)


def merge_reports(
    reports: Sequence[FuzzingReport],
) -> Tuple[FuzzingReport, Optional[int]]:
    """Merge per-shard reports into one campaign-level report.

    Returns the merged report and the index of the winning shard (the
    one whose violation is kept), or ``None`` when no shard found one.
    Deterministic: coverage union, counter sums, and first-violation-wins
    with a stable tie-break on (test cases until found, inputs until
    found, shard index).
    """
    if not reports:
        raise ValueError("no shard reports to merge")
    merged = FuzzingReport(coverage=PatternCoverage())
    effectiveness_weighted = 0.0
    for report in reports:
        merged.test_cases += report.test_cases
        merged.inputs_tested += report.inputs_tested
        merged.duration_seconds += report.duration_seconds
        merged.rounds += report.rounds
        merged.reconfigurations += report.reconfigurations
        merged.discarded_by_priming += report.discarded_by_priming
        merged.discarded_by_nesting += report.discarded_by_nesting
        merged.unconfirmed_candidates += report.unconfirmed_candidates
        merged.prescreened_inert += report.prescreened_inert
        merged.prescreen_safety_checked += report.prescreen_safety_checked
        merged.contract_emulations += report.contract_emulations
        merged.trace_cache_hits += report.trace_cache_hits
        merged.trace_cache_disk_hits += report.trace_cache_disk_hits
        merged.trace_cache_gc_evictions += report.trace_cache_gc_evictions
        merged.trace_cache_gc_bytes += report.trace_cache_gc_bytes
        merged.trace_cache_disk_write_errors += (
            report.trace_cache_disk_write_errors
        )
        effectiveness_weighted += report.mean_effectiveness * report.test_cases
        if report.coverage is not None:
            merged.coverage.covered |= report.coverage.covered
    if merged.test_cases:
        merged.mean_effectiveness = effectiveness_weighted / merged.test_cases

    winner: Optional[int] = None
    best_key: Optional[Tuple[int, int, int]] = None
    for index, report in enumerate(reports):
        if report.violation is None:
            continue
        key = (
            report.violation.test_cases_until_found,
            report.violation.inputs_until_found,
            index,
        )
        if best_key is None or key < best_key:
            best_key = key
            winner = index
    if winner is not None:
        merged.violation = reports[winner].violation
    return merged, winner


@dataclass
class CampaignReport:
    """Outcome of one parallel campaign."""

    merged: FuzzingReport
    shard_reports: List[FuzzingReport]
    winning_shard: Optional[int]
    workers: int
    wall_seconds: float
    #: campaign mode the runner used ("full" | "first-violation")
    mode: str = "full"

    @property
    def found(self) -> bool:
        return self.merged.found

    @property
    def cancelled_shards(self) -> int:
        """Shards stopped early by the first-violation cancel signal."""
        return sum(1 for report in self.shard_reports if report.cancelled)

    @property
    def violation(self) -> Optional[Violation]:
        return self.merged.violation

    @property
    def shards(self) -> int:
        return len(self.shard_reports)

    @property
    def observed_concurrency(self) -> float:
        """Mean number of shards in flight: aggregate shard wall time
        over campaign wall time. Note this measures *concurrency*, not
        speedup — per-shard durations are wall clock inside each worker
        process, so on an oversubscribed machine (workers > cores)
        time-sliced shards inflate the aggregate and this can approach
        ``workers`` even when the campaign runs no faster than
        ``workers=1``. Compare wall times across worker counts for real
        scaling (see ``benchmarks/bench_campaign_scaling.py``)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.merged.duration_seconds / self.wall_seconds

    def deterministic_report(self) -> Dict[str, Any]:
        """The campaign outcome minus anything scheduling-dependent.

        Wall-clock times, worker counts and cache counters are excluded,
        so for budget-bound full-mode campaigns this dict — and therefore
        :meth:`report_digest` — is identical across runs, worker counts,
        and whether the campaign ran straight through or was killed and
        resumed from its journal.
        """
        merged = self.merged
        violation = merged.violation
        report: Dict[str, Any] = {
            "shards": self.shards,
            "mode": self.mode,
            "test_cases": merged.test_cases,
            "inputs_tested": merged.inputs_tested,
            "prescreened_inert": merged.prescreened_inert,
            "patterns_covered": (
                len(merged.coverage.covered) if merged.coverage else 0
            ),
            "found": self.found,
            "winning_shard": self.winning_shard,
            "violation": None,
        }
        if violation is not None:
            report["violation"] = {
                "classification": violation.classification,
                "program_fingerprint": program_fingerprint(
                    violation.program, violation.arch_name
                ),
                "positions": [violation.position_a, violation.position_b],
                "test_cases_until_found": violation.test_cases_until_found,
                "inputs_until_found": violation.inputs_until_found,
            }
        return report

    def report_digest(self) -> str:
        """sha1 over the canonical deterministic report — the equality
        token the kill-and-resume gate compares."""
        canonical = json.dumps(
            self.deterministic_report(), sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        found = (
            f"VIOLATION in shard {self.winning_shard} "
            f"({self.merged.violation.classification})"
            if self.merged.violation
            else "no violation"
        )
        cancelled = (
            f", {self.cancelled_shards} shard(s) cancelled early"
            if self.cancelled_shards
            else ""
        )
        return (
            f"{found} after {self.merged.test_cases} test cases / "
            f"{self.merged.inputs_tested} inputs across {self.shards} "
            f"shard(s) on {self.workers} worker(s) in "
            f"{self.wall_seconds:.2f}s wall "
            f"({self.merged.duration_seconds:.2f}s aggregate, "
            f"effectiveness {self.merged.mean_effectiveness:.2f}{cancelled})"
        )


class CampaignRunner:
    """Fans one fuzzing budget out over deterministic shards.

    ``workers`` bounds process-level parallelism; ``shards`` (default:
    ``workers``) fixes the seed/budget partition. Keep ``shards`` fixed
    while varying ``workers`` to scale the same campaign across machines
    with different core counts and still get the identical merged report.
    """

    MODES = ("full", "first-violation")

    def __init__(
        self,
        config: FuzzerConfig,
        workers: int = 4,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        mode: str = "full",
        journal_dir: Optional[str] = None,
        resume: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config
        self.workers = workers
        self.shards = shards if shards is not None else workers
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        self.start_method = start_method
        if mode not in self.MODES:
            raise ValueError(
                f"unknown campaign mode {mode!r}; expected one of {self.MODES}"
            )
        self.mode = mode
        if resume and journal_dir is None:
            raise ValueError("resume requires a journal directory")
        if journal_dir is not None and mode != "full":
            raise ValueError(
                "journaling requires mode='full': first-violation shard "
                "reports depend on cancel timing, so checkpoints would not "
                "be replayable"
            )
        self.journal_dir = journal_dir
        self.resume = resume

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        return default_start_context()

    def run(self, should_stop=None) -> CampaignReport:
        """Run the campaign; ``should_stop`` is an optional zero-argument
        callable polled while shards run (the service's cancel/deadline
        signal). When it fires mid-run the campaign raises
        :class:`CampaignCancelled` after its in-flight shards stop at
        their next measurement-batch boundary — already-journaled
        checkpoints survive, so a cancelled journaled campaign resumes
        like a killed one."""
        start = time.perf_counter()
        if self.mode == "first-violation":
            results = self._run_first_violation(should_stop)
        else:
            results = self._run_full(should_stop)
        wall_seconds = time.perf_counter() - start
        results.sort(key=lambda item: item[0])
        shard_reports = [report for _, report in results]
        merged, winner = merge_reports(shard_reports)
        return CampaignReport(
            merged=merged,
            shard_reports=shard_reports,
            winning_shard=winner,
            workers=self.workers,
            wall_seconds=wall_seconds,
            mode=self.mode,
        )

    def _run_full(self, should_stop=None) -> List[Tuple[int, FuzzingReport]]:
        """Full-budget mode, optionally checkpointing each completed
        shard to the journal and replaying finished shards on resume."""
        journal: Optional[CampaignJournal] = None
        replayed: Dict[int, FuzzingReport] = {}
        if self.journal_dir is not None:
            journal = CampaignJournal(self.journal_dir)
            journal.open(
                campaign_payload(self.config, self.shards, self.mode),
                resume=self.resume,
            )
            if self.resume:
                replayed = {
                    shard: report
                    for (cell, shard), report in journal.completed().items()
                    if cell == 0 and 0 <= shard < self.shards
                }
        tasks = [
            (index, shard_fuzzer_config(self.config, index, self.shards))
            for index in range(self.shards)
            if index not in replayed
        ]
        results: List[Tuple[int, FuzzingReport]] = list(replayed.items())
        if not tasks:
            return results
        if self.workers == 1:
            for index, config in tasks:
                if should_stop is not None and should_stop():
                    raise CampaignCancelled(
                        f"campaign stopped before shard {index} "
                        f"({len(results)}/{self.shards} shard(s) done)"
                    )
                report = Fuzzer(config).run(should_stop=should_stop)
                if report.cancelled:
                    raise CampaignCancelled(
                        f"campaign stopped inside shard {index} "
                        f"({len(results)}/{self.shards} shard(s) done)"
                    )
                if journal is not None:
                    journal.record(0, index, report)
                results.append((index, report))
        elif should_stop is not None:
            results.extend(
                self._collect_cancellable(tasks, journal, should_stop)
            )
        elif journal is not None:
            # unordered so each checkpoint lands the moment its shard
            # finishes, not when the slowest earlier shard does
            with self._context().Pool(min(self.workers, len(tasks))) as pool:
                for result in pool.imap_unordered(_run_shard, tasks):
                    journal.record(0, result[0], result[1])
                    results.append(result)
        else:
            with self._context().Pool(min(self.workers, len(tasks))) as pool:
                results.extend(pool.map(_run_shard, tasks))
        return results

    def _collect_cancellable(
        self, tasks, journal, should_stop
    ) -> List[Tuple[int, FuzzingReport]]:
        """Pool fan-out with a cooperative stop signal.

        The parent polls ``should_stop`` while shards run and relays it
        through a shared Manager event (the same machinery the
        first-violation early-cancel uses); shards stop at their next
        measurement-batch boundary. Shards that completed *before* the
        signal are journaled exactly as in the plain path, then
        :class:`CampaignCancelled` is raised."""
        context = self._context()
        manager = context.Manager()
        collected: List[Tuple[int, FuzzingReport]] = []
        stopped = False
        try:
            cancel_event = manager.Event()
            pool_tasks = [
                (index, config, cancel_event) for index, config in tasks
            ]
            with context.Pool(min(self.workers, len(tasks))) as pool:
                pending = {
                    pool.apply_async(_run_shard, (task,))
                    for task in pool_tasks
                }
                while pending:
                    if not stopped and should_stop():
                        stopped = True
                        cancel_event.set()
                    done = {h for h in pending if h.ready()}
                    for handle in done:
                        index, report = handle.get()
                        if not report.cancelled:
                            if journal is not None:
                                journal.record(0, index, report)
                            collected.append((index, report))
                    pending -= done
                    if pending and not done:
                        time.sleep(0.05)
        finally:
            manager.shutdown()
        if stopped:
            raise CampaignCancelled(
                f"campaign stopped with {len(collected)} of {self.shards} "
                "shard(s) completed"
            )
        return collected

    def _run_first_violation(
        self, should_stop=None
    ) -> List[Tuple[int, FuzzingReport]]:
        """Run shards with an early-cancel signal set on the first
        confirmed violation; remaining shards stop at their next
        test-case boundary instead of draining their budget."""
        if self.workers == 1:
            # Inline: run shards in index order and skip the rest outright
            # once one finds a violation (a skipped shard reports zero
            # test cases, flagged cancelled).
            results: List[Tuple[int, FuzzingReport]] = []
            found = False
            for index in range(self.shards):
                if should_stop is not None and should_stop():
                    raise CampaignCancelled(
                        f"campaign stopped before shard {index} "
                        f"({len(results)}/{self.shards} shard(s) done)"
                    )
                if found:
                    results.append(
                        (index, FuzzingReport(coverage=PatternCoverage(),
                                              cancelled=True))
                    )
                    continue
                config = shard_fuzzer_config(self.config, index, self.shards)
                report = Fuzzer(config).run(should_stop=should_stop)
                if report.cancelled:
                    raise CampaignCancelled(
                        f"campaign stopped inside shard {index} "
                        f"({len(results)}/{self.shards} shard(s) done)"
                    )
                results.append((index, report))
                found = found or report.found

            return results

        context = self._context()
        manager = context.Manager()
        try:
            cancel_event = manager.Event()
            tasks = [
                (
                    index,
                    shard_fuzzer_config(self.config, index, self.shards),
                    cancel_event,
                )
                for index in range(self.shards)
            ]
            if should_stop is not None:
                # apply_async + polling so the parent can watch the
                # service's stop signal while shards run; the shared
                # cancel event doubles as first-violation early-cancel
                # and cooperative-stop relay.
                stopped = False
                results = []
                with context.Pool(min(self.workers, self.shards)) as pool:
                    pending = {
                        pool.apply_async(_run_shard, (task,))
                        for task in tasks
                    }
                    while pending:
                        if not stopped and should_stop():
                            stopped = True
                            cancel_event.set()
                        done = {h for h in pending if h.ready()}
                        for handle in done:
                            result = handle.get()
                            results.append(result)
                            if result[1].found and not cancel_event.is_set():
                                cancel_event.set()
                        pending -= done
                        if pending and not done:
                            time.sleep(0.05)
                if stopped:
                    raise CampaignCancelled(
                        f"campaign stopped with {len(results)} of "
                        f"{self.shards} shard(s) collected"
                    )
                return results
            with context.Pool(min(self.workers, self.shards)) as pool:
                results = []
                for result in pool.imap_unordered(_run_shard, tasks):
                    results.append(result)
                    if result[1].found and not cancel_event.is_set():
                        cancel_event.set()
        finally:
            manager.shutdown()
        return results


def run_campaign(
    config: FuzzerConfig,
    workers: int = 4,
    shards: Optional[int] = None,
    mode: str = "full",
    journal_dir: Optional[str] = None,
    resume: bool = False,
    should_stop=None,
) -> CampaignReport:
    """Convenience one-call parallel campaign."""
    return CampaignRunner(
        config, workers=workers, shards=shards, mode=mode,
        journal_dir=journal_dir, resume=resume,
    ).run(should_stop=should_stop)


__all__ = [
    "CampaignCancelled",
    "CampaignReport",
    "CampaignRunner",
    "default_start_context",
    "derive_shard_seed",
    "merge_reports",
    "run_campaign",
    "shard_budgets",
    "shard_fuzzer_config",
]
