"""Relational analysis (paper §4 and §5.5).

Inputs are partitioned into *input classes* — equivalence classes of
contract-trace equality. Classes with a single member are discarded as
ineffective. Within each class, all hardware traces must be equivalent;
a non-equivalent pair is a counterexample candidate.

Hardware-trace equivalence is configurable:

- ``"subset"`` (paper default): two traces are equivalent when one is a
  subset of the other. The §5.5 intuition: inconsistently executed
  speculative paths produce *fewer but matching* observations (noise),
  while secret-dependent leakage produces *different* observations;
- ``"strict"``: plain set equality. Used by the ablation benchmark and
  when hunting the latency-leak variants of §6.3, which can manifest as
  pure subset divergences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.traces import CTrace, HTrace


@dataclass
class InputClass:
    """One contract-equivalence class of inputs."""

    ctrace: CTrace
    positions: List[int]  # indices into the input sequence

    @property
    def size(self) -> int:
        return len(self.positions)


@dataclass
class ViolationCandidate:
    """A pair of same-class inputs with non-equivalent hardware traces."""

    ctrace: CTrace
    position_a: int
    position_b: int
    htrace_a: HTrace
    htrace_b: HTrace

    def __str__(self) -> str:
        return (
            f"inputs #{self.position_a} / #{self.position_b} share a contract "
            f"trace but differ on hardware traces:\n"
            f"  {self.htrace_a.bitmap()}\n  {self.htrace_b.bitmap()}"
        )


@dataclass
class AnalysisResult:
    """Outcome of analyzing one test case."""

    classes: List[InputClass] = field(default_factory=list)
    singleton_inputs: int = 0
    candidates: List[ViolationCandidate] = field(default_factory=list)

    @property
    def effective_classes(self) -> List[InputClass]:
        return [cls for cls in self.classes if cls.size >= 2]

    @property
    def effectiveness(self) -> float:
        """Fraction of inputs in non-singleton classes (CH2 metric)."""
        total = sum(cls.size for cls in self.classes) + self.singleton_inputs
        if total == 0:
            return 0.0
        return sum(cls.size for cls in self.classes) / total


class RelationalAnalyzer:
    """Implements the relational check of Definition 1 on collected traces."""

    def __init__(self, mode: str = "subset"):
        if mode not in ("subset", "strict"):
            raise ValueError(f"unknown analyzer mode {mode!r}")
        self.mode = mode

    def equivalent(self, a: HTrace, b: HTrace) -> bool:
        """Hardware-trace equivalence (paper §5.5)."""
        if self.mode == "strict":
            return a.signals == b.signals
        return a.issubset(b) or b.issubset(a)

    def build_classes(self, ctraces: Sequence[CTrace]) -> Tuple[List[InputClass], int]:
        """Group input positions by contract trace; drop singletons."""
        by_trace: Dict[CTrace, List[int]] = {}
        for position, ctrace in enumerate(ctraces):
            by_trace.setdefault(ctrace, []).append(position)
        classes = [
            InputClass(ctrace, positions)
            for ctrace, positions in by_trace.items()
            if len(positions) >= 2
        ]
        singletons = sum(
            1 for positions in by_trace.values() if len(positions) == 1
        )
        return classes, singletons

    def analyze(
        self,
        ctraces: Sequence[CTrace],
        htraces: Sequence[HTrace],
    ) -> AnalysisResult:
        """Full relational analysis of one test case (paper §4):
        partition by contract trace, then check hardware-trace equivalence
        within each class."""
        if len(ctraces) != len(htraces):
            raise ValueError("ctraces and htraces must align one-to-one")
        classes, singletons = self.build_classes(ctraces)
        result = AnalysisResult(classes=classes, singleton_inputs=singletons)
        for cls in classes:
            result.candidates.extend(self._check_class(cls, htraces))
        return result

    def _check_class(
        self, cls: InputClass, htraces: Sequence[HTrace]
    ) -> List[ViolationCandidate]:
        """Compare all members against the first non-equivalent partition.

        A full pairwise scan is quadratic; comparing every member to every
        already-seen representative finds the same witnesses and is linear
        in practice (most classes are homogeneous).
        """
        candidates: List[ViolationCandidate] = []
        representatives: List[int] = []
        for position in cls.positions:
            trace = htraces[position]
            matched = False
            for rep in representatives:
                if self.equivalent(trace, htraces[rep]):
                    matched = True
                    break
            if not matched and representatives:
                candidates.append(
                    ViolationCandidate(
                        ctrace=cls.ctrace,
                        position_a=representatives[0],
                        position_b=position,
                        htrace_a=htraces[representatives[0]],
                        htrace_b=trace,
                    )
                )
            if not matched:
                representatives.append(position)
        return candidates


__all__ = [
    "AnalysisResult",
    "InputClass",
    "RelationalAnalyzer",
    "ViolationCandidate",
]
