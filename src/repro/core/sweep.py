"""Cross-ISA sweeps: campaign grids over ``arch x contract x cpu``.

The paper's headline evaluation is a grid (Table 3): run the MRT loop
once per target CPU per contract and report which cells surface
violations, and how fast (Table 4). With the architecture-plugin layer
the same grid extends across ISAs, so fence/serialization findings are
reported *per architecture* instead of per hard-coded ISA ("Don't sit
on the fence"): the same sweep shows LFENCE-bounded speculation on
x86-64 next to DSB/ISB-bounded speculation on AArch64.

- :class:`SweepSpec` describes the grid: the three axes, a base
  :class:`FuzzerConfig` every cell inherits, and the per-cell campaign
  shape (workers/shards/mode). Each cell fuzzes with a deterministic
  seed derived by :func:`derive_cell_seed` — the cell-level mirror of
  :func:`repro.core.campaign.derive_shard_seed`. The derivation mixes
  the base seed with the ``(arch, contract)`` coordinates but
  **deliberately not the cpu**: cells along the cpu axis replay the
  identical program/input battery, which is both the fair comparison
  (same tests against every CPU) and what lets them share contract
  traces through the persistent cache.
- :class:`SweepRunner` executes each cell through the existing
  :class:`~repro.core.campaign.CampaignRunner` and merges the outcomes
  into a :class:`SweepReport`: the violation matrix, detection time to
  first violation per cell, and observed shard concurrency. Cells are
  independent campaigns, so ``max_parallel_cells`` (CLI
  ``--parallel-cells``) fans them out over worker processes; cell seeds
  are derived from the grid coordinates alone, so the scheduling order
  never changes a deterministic cell report, and
  :func:`cell_worker_budget` caps each concurrent cell's shard workers
  so the nested pools never oversubscribe the host. When a
  ``cache_dir`` is set, every cell (and every shard worker process
  inside a cell) shares one on-disk
  :class:`~repro.core.trace_cache.PersistentTraceCache`, so cells with
  the same ``(arch, contract)`` pair emulate each trace once; a
  ``trace_cache_max_bytes`` bound on the base config arms the cache's
  size-bounded GC, which the runner also finalizes after the grid.
- :class:`SweepReport` renders as JSON and as a markdown matrix (one
  ``contract x cpu`` table per architecture). The per-cell
  ``deterministic_report()`` dicts exclude wall-clock and cache
  counters, so for budget-bound sweeps they are byte-identical across
  runs, worker counts, and cache on/off — the sweep-level analogue of
  the campaign engine's merged-report invariance.

CLI::

    python -m repro sweep --arch x86_64,aarch64 \
        --contract CT-SEQ,CT-COND --cpu skylake,coffee-lake -n 100
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import queue as queue_module
import signal
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.arch import architecture_names
from repro.contracts import contract_names
from repro.core.campaign import (
    CampaignReport,
    CampaignRunner,
    default_start_context,
    derive_shard_seed,
    shard_budgets,
)
from repro.core.config import FuzzerConfig
from repro.core.trace_cache import PersistentTraceCache, program_fingerprint
from repro.uarch.config import preset_names


@dataclass(frozen=True)
class SweepCell:
    """One grid coordinate: an (arch, contract, cpu) triple."""

    arch: str
    contract: str
    cpu: str

    @property
    def label(self) -> str:
        return f"{self.arch}/{self.contract}/{self.cpu}"


def derive_cell_seed(base_seed: int, cell: SweepCell) -> int:
    """Deterministic, well-separated seed for one sweep cell.

    Mirrors :func:`~repro.core.campaign.derive_shard_seed`: the cell's
    ``(arch, contract)`` coordinates are digested into a stable index
    and pushed through the same splitmix64 finalizer, so nearby base
    seeds or similar coordinates still yield uncorrelated streams. The
    cpu coordinate deliberately does not participate: cells along the
    cpu axis run the identical program/input battery (fair comparison,
    maximal trace-cache sharing); within a cell, shards then derive
    their seeds from this value as usual.
    """
    digest = hashlib.sha1(
        f"{cell.arch}|{cell.contract}".encode("utf-8")
    ).digest()
    coordinate = int.from_bytes(digest[:8], "big")
    return derive_shard_seed(base_seed, coordinate)


def cell_worker_budget(workers: int, parallel_cells: int) -> int:
    """Shard workers each cell may run when cells execute in parallel.

    The host budget is ``max(workers, parallel_cells)`` processes: with
    one cell at a time a cell gets the full ``workers``; with several,
    each gets ``workers // parallel_cells`` (at least one), so
    ``cell processes x shard workers per cell`` never exceeds the
    budget. Only the *pool size* shrinks — the shard partition (seeds
    and budgets) is pinned separately, which is what keeps parallel and
    sequential sweeps byte-identical.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if parallel_cells < 1:
        raise ValueError("parallel_cells must be >= 1")
    if parallel_cells == 1:
        return workers
    return max(1, workers // parallel_cells)


def _run_cell_worker(task, result_queue) -> None:
    """Process entry point for one parallel sweep cell.

    Runs the cell's campaign and ships ``(index, error, report)`` back;
    a failure travels as a formatted traceback instead of poisoning the
    queue. The process is non-daemonic, so the campaign runner inside is
    free to spawn its own shard pool and cancel-event manager — the
    first-violation early-cancel machinery works unchanged across
    parallel cells.
    """
    # The scheduler terminates sibling workers when one cell fails.
    # SIGTERM's default action would skip Python cleanup and orphan
    # this worker's own children (shard pool, cancel-event manager) to
    # keep fuzzing; converting it to SystemExit unwinds the campaign
    # runner's context managers so the whole cell dies with its worker.
    try:
        signal.signal(signal.SIGTERM, lambda *_args: sys.exit(1))
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        pass
    index, config, workers, shards, mode = task
    try:
        report = CampaignRunner(
            config, workers=workers, shards=shards, mode=mode
        ).run()
    except SystemExit:
        raise
    except BaseException:
        result_queue.put((index, traceback.format_exc(), None))
    else:
        result_queue.put((index, None, report))


@dataclass
class SweepSpec:
    """A cartesian campaign grid over ``arch x contract x cpu``.

    Every cell inherits ``base_config`` with its arch/contract/cpu and
    seed replaced. The per-cell test-case budget is
    ``base_config.num_test_cases`` unless ``total_budget`` is set, in
    which case the total is split over the cells with
    :func:`~repro.core.campaign.shard_budgets` (the same near-equal
    slicing the campaign engine uses for shards); ``budget_overrides``
    pins individual cells (keyed by ``(arch, contract, cpu)``) for
    heterogeneous grids like Table 3.
    """

    arches: Tuple[str, ...] = ("x86_64",)
    contracts: Tuple[str, ...] = ("CT-SEQ",)
    cpus: Tuple[str, ...] = ("skylake",)
    base_config: FuzzerConfig = field(default_factory=FuzzerConfig)
    #: per-cell campaign shape (see :class:`CampaignRunner`)
    workers: int = 1
    shards: Optional[int] = None
    mode: str = "full"
    #: optional grid-wide budget, split over cells like shard_budgets
    total_budget: Optional[int] = None
    #: optional per-cell budget pins, keyed by (arch, contract, cpu)
    budget_overrides: Mapping[Tuple[str, str, str], int] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for axis, values, known in (
            ("arch", self.arches, architecture_names()),
            ("contract", self.contracts, contract_names()),
            ("cpu", self.cpus, preset_names()),
        ):
            if not values:
                raise ValueError(f"sweep {axis} axis must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(
                    f"duplicate {axis} values in {values!r}: a repeated "
                    "cell would rerun the identical campaign"
                )
            for value in values:
                if value not in known:
                    raise ValueError(
                        f"unknown {axis} {value!r}; "
                        f"available: {', '.join(known)}"
                    )
        valid_keys = {
            (cell.arch, cell.contract, cell.cpu) for cell in self.cells()
        }
        for key in self.budget_overrides:
            if key not in valid_keys:
                raise ValueError(
                    f"budget override {key!r} matches no grid cell"
                )

    def cells(self) -> List[SweepCell]:
        """Grid cells in deterministic arch-major order."""
        return [
            SweepCell(arch, contract, cpu)
            for arch in self.arches
            for contract in self.contracts
            for cpu in self.cpus
        ]

    def cell_budget(self, cell: SweepCell, index: int, count: int) -> int:
        override = self.budget_overrides.get(
            (cell.arch, cell.contract, cell.cpu)
        )
        if override is not None:
            return override
        if self.total_budget is not None:
            return shard_budgets(self.total_budget, count)[index]
        return self.base_config.num_test_cases

    def cell_config(self, cell: SweepCell, index: int = 0,
                    count: int = 1) -> FuzzerConfig:
        """The :class:`FuzzerConfig` one cell's campaign runs with."""
        return replace(
            self.base_config,
            arch=cell.arch,
            contract_name=cell.contract,
            cpu_preset=cell.cpu,
            cpu_config=None,
            seed=derive_cell_seed(self.base_config.seed, cell),
            num_test_cases=self.cell_budget(cell, index, count),
        )


@dataclass
class SweepCellResult:
    """Outcome of one cell's campaign."""

    cell: SweepCell
    seed: int
    campaign: CampaignReport

    @property
    def found(self) -> bool:
        return self.campaign.found

    @property
    def classification(self) -> Optional[str]:
        violation = self.campaign.violation
        return violation.classification if violation else None

    @property
    def time_to_first_violation(self) -> Optional[float]:
        """Wall-clock seconds inside the winning shard until detection
        (the Table 4 metric), or ``None`` without a violation."""
        violation = self.campaign.violation
        return violation.seconds_until_found if violation else None

    def matrix_entry(self) -> str:
        """The human-readable violation-matrix cell."""
        if not self.found:
            return "-"
        violation = self.campaign.violation
        return (
            f"{self.classification} "
            f"({violation.test_cases_until_found} cases, "
            f"{violation.seconds_until_found:.1f}s)"
        )

    def deterministic_report(self) -> Dict[str, object]:
        """The cell outcome minus anything scheduling-dependent.

        Wall-clock times, observed concurrency and cache counters are
        excluded, so for budget-bound full-mode sweeps this dict is
        identical across runs, worker counts, and cache on/off.
        """
        merged = self.campaign.merged
        violation = merged.violation
        report: Dict[str, object] = {
            "arch": self.cell.arch,
            "contract": self.cell.contract,
            "cpu": self.cell.cpu,
            "seed": self.seed,
            "shards": self.campaign.shards,
            "mode": self.campaign.mode,
            "test_cases": merged.test_cases,
            "inputs_tested": merged.inputs_tested,
            "prescreened_inert": merged.prescreened_inert,
            "patterns_covered": (
                len(merged.coverage.covered) if merged.coverage else 0
            ),
            "found": self.found,
            "winning_shard": self.campaign.winning_shard,
            "violation": None,
        }
        if violation is not None:
            report["violation"] = {
                "classification": violation.classification,
                "program_fingerprint": program_fingerprint(
                    violation.program, self.cell.arch
                ),
                "positions": [violation.position_a, violation.position_b],
                "test_cases_until_found": violation.test_cases_until_found,
                "inputs_until_found": violation.inputs_until_found,
            }
        return report

    def timing_report(self) -> Dict[str, object]:
        """The scheduling-dependent counters, reported separately."""
        merged = self.campaign.merged
        return {
            "wall_seconds": self.campaign.wall_seconds,
            "aggregate_seconds": merged.duration_seconds,
            "observed_concurrency": self.campaign.observed_concurrency,
            "seconds_until_found": self.time_to_first_violation,
            "contract_emulations": merged.contract_emulations,
            "trace_cache_hits": merged.trace_cache_hits,
            "trace_cache_disk_hits": merged.trace_cache_disk_hits,
            "trace_cache_gc_evictions": merged.trace_cache_gc_evictions,
            "trace_cache_gc_bytes": merged.trace_cache_gc_bytes,
            "cancelled_shards": self.campaign.cancelled_shards,
        }


@dataclass
class SweepReport:
    """Merged outcome of one grid sweep."""

    spec: SweepSpec
    results: List[SweepCellResult]
    wall_seconds: float
    cache_dir: Optional[str] = None
    #: cell-level parallelism the runner was allowed (scheduling only —
    #: deterministic cell reports are identical for every value)
    max_parallel_cells: int = 1
    #: shard workers each cell actually ran with (the budgeted count)
    cell_workers: int = 1
    #: disk entries / bytes the trace-cache GC evicted across the sweep
    #: (cells' own passes plus the runner's finalizing pass)
    trace_cache_gc_evictions: int = 0
    trace_cache_gc_bytes: int = 0
    #: disk footprint of the shared cache after the finalizing GC pass
    #: (``None`` without a cache directory)
    trace_cache_disk_bytes: Optional[int] = None

    @property
    def violations_found(self) -> int:
        return sum(1 for result in self.results if result.found)

    @property
    def trace_cache_disk_hits(self) -> int:
        """Traces reused from the shared on-disk cache across the sweep
        (nonzero when sibling shards, neighboring cells or an earlier
        run already emulated them)."""
        return sum(
            result.campaign.merged.trace_cache_disk_hits
            for result in self.results
        )

    def cell_result(self, cell: SweepCell) -> SweepCellResult:
        for result in self.results:
            if result.cell == cell:
                return result
        raise KeyError(cell.label)

    # -- rendering ---------------------------------------------------------

    def to_markdown(self) -> str:
        """The violation matrix: one ``contract x cpu`` table per arch."""
        lines: List[str] = ["# Sweep violation matrix", ""]
        for arch in self.spec.arches:
            lines.append(f"## {arch}")
            lines.append("")
            header = ["contract \\ cpu"] + list(self.spec.cpus)
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "---|" * len(header))
            for contract in self.spec.contracts:
                row = [contract]
                for cpu in self.spec.cpus:
                    result = self.cell_result(
                        SweepCell(arch, contract, cpu)
                    )
                    row.append(result.matrix_entry())
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
        lines.append(
            f"{self.violations_found}/{len(self.results)} cells violated "
            f"in {self.wall_seconds:.1f}s"
            + (
                f" ({self.trace_cache_disk_hits} traces reused from "
                f"{self.cache_dir})"
                if self.cache_dir
                else ""
            )
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """Full JSON report: deterministic cell reports under ``cells``,
        scheduling-dependent counters under ``timing``."""
        return {
            "grid": {
                "arches": list(self.spec.arches),
                "contracts": list(self.spec.contracts),
                "cpus": list(self.spec.cpus),
                "mode": self.spec.mode,
                "workers": self.spec.workers,
                "base_seed": self.spec.base_config.seed,
            },
            "cells": [
                result.deterministic_report() for result in self.results
            ],
            "timing": {
                result.cell.label: result.timing_report()
                for result in self.results
            },
            "scheduling": {
                "max_parallel_cells": self.max_parallel_cells,
                "cell_workers": self.cell_workers,
            },
            "trace_cache": {
                "disk_hits": self.trace_cache_disk_hits,
                "gc_evictions": self.trace_cache_gc_evictions,
                "gc_bytes": self.trace_cache_gc_bytes,
                "disk_bytes": self.trace_cache_disk_bytes,
                "max_bytes": self.spec.base_config.trace_cache_max_bytes,
            },
            "wall_seconds": self.wall_seconds,
            "trace_cache_disk_hits": self.trace_cache_disk_hits,
        }

    def cell_reports_json(self) -> str:
        """Canonical JSON of the deterministic per-cell reports — the
        byte-comparable artifact for reproducibility checks."""
        return json.dumps(
            [result.deterministic_report() for result in self.results],
            indent=2,
            sort_keys=True,
        ) + "\n"

    def summary(self) -> str:
        cache = (
            f", {self.trace_cache_disk_hits} traces reused from disk"
            if self.cache_dir
            else ""
        )
        return (
            f"{self.violations_found}/{len(self.results)} cells violated "
            f"across {len(self.spec.arches)} arch(es) in "
            f"{self.wall_seconds:.1f}s{cache}"
        )


class SweepRunner:
    """Executes a :class:`SweepSpec`, up to ``max_parallel_cells`` at once.

    Cells are independent campaigns with coordinate-derived seeds, so
    scheduling them onto worker processes changes wall clock only:
    deterministic cell reports are byte-identical for every
    ``max_parallel_cells`` value. When cells run in parallel, each one's
    shard-worker pool is capped by :func:`cell_worker_budget` (the shard
    *partition* — seeds and budgets — stays exactly as specified), and
    cell workers are non-daemonic processes, so a cell's own
    first-violation early-cancel machinery (shard pool + cancel-event
    manager) runs unchanged inside them. ``cache_dir`` points every
    cell and every shard worker at one shared persistent trace cache;
    ``base_config.trace_cache_max_bytes`` bounds that cache's disk
    footprint, with a finalizing GC pass after the grid.
    """

    def __init__(
        self,
        spec: SweepSpec,
        cache_dir: Optional[str] = None,
        max_parallel_cells: int = 1,
    ):
        if max_parallel_cells < 1:
            raise ValueError("max_parallel_cells must be >= 1")
        self.spec = spec
        self.max_parallel_cells = max_parallel_cells
        self.cache_dir = (
            cache_dir
            if cache_dir is not None
            else spec.base_config.trace_cache_dir
        )

    def cell_configs(self) -> List[Tuple[SweepCell, FuzzerConfig]]:
        cells = self.spec.cells()
        configs = []
        for index, cell in enumerate(cells):
            config = self.spec.cell_config(cell, index, len(cells))
            if self.cache_dir is not None:
                config = replace(config, trace_cache_dir=self.cache_dir)
            configs.append((cell, config))
        return configs

    def run(self, progress=None) -> SweepReport:
        """Run the grid; ``progress`` is an optional callable invoked
        with (cell, campaign_report) after each cell completes — in
        completion order when cells run in parallel."""
        start = time.perf_counter()
        cache: Optional[PersistentTraceCache] = None
        max_bytes = self.spec.base_config.trace_cache_max_bytes
        if self.cache_dir is not None:
            # create eagerly so an empty grid still leaves a valid dir
            cache = PersistentTraceCache(
                self.cache_dir,
                max_bytes=max_bytes,
                compress=self.spec.base_config.trace_cache_compress,
            )
        pairs = self.cell_configs()
        parallel = min(self.max_parallel_cells, len(pairs))
        if parallel <= 1:
            results = self._run_sequential(pairs, progress)
        else:
            results = self._run_parallel(pairs, parallel, progress)
        gc_evictions = sum(
            result.campaign.merged.trace_cache_gc_evictions
            for result in results
        )
        gc_bytes = sum(
            result.campaign.merged.trace_cache_gc_bytes for result in results
        )
        disk_bytes: Optional[int] = None
        if cache is not None:
            if max_bytes is not None:
                # finalizing pass: concurrent writers enforce the bound
                # cooperatively, so trim whatever the last writers left;
                # its scan doubles as the footprint measurement
                evicted, freed = cache.gc()
                gc_evictions += evicted
                gc_bytes += freed
                disk_bytes = cache.known_disk_bytes()
            else:
                disk_bytes = cache.disk_usage_bytes()
        return SweepReport(
            spec=self.spec,
            results=results,
            wall_seconds=time.perf_counter() - start,
            cache_dir=self.cache_dir,
            max_parallel_cells=self.max_parallel_cells,
            cell_workers=cell_worker_budget(self.spec.workers, parallel),
            trace_cache_gc_evictions=gc_evictions,
            trace_cache_gc_bytes=gc_bytes,
            trace_cache_disk_bytes=disk_bytes,
        )

    def _run_sequential(self, pairs, progress) -> List[SweepCellResult]:
        results: List[SweepCellResult] = []
        for cell, config in pairs:
            campaign = CampaignRunner(
                config,
                workers=self.spec.workers,
                shards=self.spec.shards,
                mode=self.spec.mode,
            ).run()
            results.append(SweepCellResult(cell, config.seed, campaign))
            if progress is not None:
                progress(cell, campaign)
        return results

    def _run_parallel(
        self, pairs, parallel: int, progress
    ) -> List[SweepCellResult]:
        """Fan the cells out over ``parallel`` worker processes.

        A hand-rolled scheduler rather than a ``Pool``: cell workers
        must be non-daemonic (each may spawn its own shard pool and
        cancel-event manager), and forking only from the scheduler loop
        keeps the parent single-threaded. The shard partition is pinned
        explicitly so shrinking the per-cell pool cannot shift it.
        """
        # pin the partition the sequential path would use implicitly
        shards = (
            self.spec.shards
            if self.spec.shards is not None
            else self.spec.workers
        )
        workers = cell_worker_budget(self.spec.workers, parallel)
        context = default_start_context()
        result_queue = context.Queue()
        tasks = deque(
            (index, config, workers, shards, self.spec.mode)
            for index, (_cell, config) in enumerate(pairs)
        )
        #: cell index -> worker process, for the cells still in flight
        in_flight: Dict[int, multiprocessing.Process] = {}
        processes: List[multiprocessing.Process] = []
        results: List[Optional[SweepCellResult]] = [None] * len(pairs)

        def launch() -> None:
            task = tasks.popleft()
            process = context.Process(
                target=_run_cell_worker, args=(task, result_queue)
            )
            process.start()
            in_flight[task[0]] = process
            processes.append(process)

        try:
            for _ in range(min(parallel, len(tasks))):
                launch()
            collected = 0
            while collected < len(pairs):
                try:
                    index, error, campaign = result_queue.get(timeout=1.0)
                except queue_module.Empty:
                    # a worker killed by the OS (OOM, signal) can never
                    # enqueue its result — surface it instead of
                    # blocking forever. exitcode 0 with a pending
                    # result just means the payload is still in transit
                    for cell_index, process in in_flight.items():
                        if not process.is_alive() and process.exitcode != 0:
                            raise RuntimeError(
                                f"sweep cell {pairs[cell_index][0].label} "
                                f"worker died with exit code "
                                f"{process.exitcode} before reporting"
                            )
                    continue
                collected += 1
                in_flight.pop(index, None)
                cell, config = pairs[index]
                if error is not None:
                    raise RuntimeError(
                        f"sweep cell {cell.label} failed in its worker "
                        f"process:\n{error}"
                    )
                results[index] = SweepCellResult(cell, config.seed, campaign)
                if progress is not None:
                    progress(cell, campaign)
                if tasks:
                    launch()
        except BaseException:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for process in processes:
                process.join()
        return results


def run_sweep(
    spec: SweepSpec,
    cache_dir: Optional[str] = None,
    progress=None,
    max_parallel_cells: int = 1,
) -> SweepReport:
    """Convenience one-call grid sweep."""
    return SweepRunner(
        spec, cache_dir=cache_dir, max_parallel_cells=max_parallel_cells
    ).run(progress=progress)


__all__ = [
    "SweepCell",
    "SweepCellResult",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "cell_worker_budget",
    "derive_cell_seed",
    "run_sweep",
]
