"""Cross-ISA sweeps: campaign grids over ``arch x contract x cpu``.

The paper's headline evaluation is a grid (Table 3): run the MRT loop
once per target CPU per contract and report which cells surface
violations, and how fast (Table 4). With the architecture-plugin layer
the same grid extends across ISAs, so fence/serialization findings are
reported *per architecture* instead of per hard-coded ISA ("Don't sit
on the fence"): the same sweep shows LFENCE-bounded speculation on
x86-64 next to DSB/ISB-bounded speculation on AArch64.

- :class:`SweepSpec` describes the grid: the three axes, a base
  :class:`FuzzerConfig` every cell inherits, and the per-cell campaign
  shape (workers/shards/mode). Each cell fuzzes with a deterministic
  seed derived by :func:`derive_cell_seed` — the cell-level mirror of
  :func:`repro.core.campaign.derive_shard_seed`. The derivation mixes
  the base seed with the ``(arch, contract)`` coordinates but
  **deliberately not the cpu**: cells along the cpu axis replay the
  identical program/input battery, which is both the fair comparison
  (same tests against every CPU) and what lets them share contract
  traces through the persistent cache.
- :class:`SweepRunner` executes each cell through the existing
  :class:`~repro.core.campaign.CampaignRunner` and merges the outcomes
  into a :class:`SweepReport`: the violation matrix, detection time to
  first violation per cell, and observed shard concurrency. When a
  ``cache_dir`` is set, every cell (and every shard worker process
  inside a cell) shares one on-disk
  :class:`~repro.core.trace_cache.PersistentTraceCache`, so cells with
  the same ``(arch, contract)`` pair emulate each trace once.
- :class:`SweepReport` renders as JSON and as a markdown matrix (one
  ``contract x cpu`` table per architecture). The per-cell
  ``deterministic_report()`` dicts exclude wall-clock and cache
  counters, so for budget-bound sweeps they are byte-identical across
  runs, worker counts, and cache on/off — the sweep-level analogue of
  the campaign engine's merged-report invariance.

CLI::

    python -m repro sweep --arch x86_64,aarch64 \
        --contract CT-SEQ,CT-COND --cpu skylake,coffee-lake -n 100
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.arch import architecture_names
from repro.contracts import contract_names
from repro.core.campaign import (
    CampaignReport,
    CampaignRunner,
    derive_shard_seed,
    shard_budgets,
)
from repro.core.config import FuzzerConfig
from repro.core.trace_cache import PersistentTraceCache, program_fingerprint
from repro.uarch.config import preset_names


@dataclass(frozen=True)
class SweepCell:
    """One grid coordinate: an (arch, contract, cpu) triple."""

    arch: str
    contract: str
    cpu: str

    @property
    def label(self) -> str:
        return f"{self.arch}/{self.contract}/{self.cpu}"


def derive_cell_seed(base_seed: int, cell: SweepCell) -> int:
    """Deterministic, well-separated seed for one sweep cell.

    Mirrors :func:`~repro.core.campaign.derive_shard_seed`: the cell's
    ``(arch, contract)`` coordinates are digested into a stable index
    and pushed through the same splitmix64 finalizer, so nearby base
    seeds or similar coordinates still yield uncorrelated streams. The
    cpu coordinate deliberately does not participate: cells along the
    cpu axis run the identical program/input battery (fair comparison,
    maximal trace-cache sharing); within a cell, shards then derive
    their seeds from this value as usual.
    """
    digest = hashlib.sha1(
        f"{cell.arch}|{cell.contract}".encode("utf-8")
    ).digest()
    coordinate = int.from_bytes(digest[:8], "big")
    return derive_shard_seed(base_seed, coordinate)


@dataclass
class SweepSpec:
    """A cartesian campaign grid over ``arch x contract x cpu``.

    Every cell inherits ``base_config`` with its arch/contract/cpu and
    seed replaced. The per-cell test-case budget is
    ``base_config.num_test_cases`` unless ``total_budget`` is set, in
    which case the total is split over the cells with
    :func:`~repro.core.campaign.shard_budgets` (the same near-equal
    slicing the campaign engine uses for shards); ``budget_overrides``
    pins individual cells (keyed by ``(arch, contract, cpu)``) for
    heterogeneous grids like Table 3.
    """

    arches: Tuple[str, ...] = ("x86_64",)
    contracts: Tuple[str, ...] = ("CT-SEQ",)
    cpus: Tuple[str, ...] = ("skylake",)
    base_config: FuzzerConfig = field(default_factory=FuzzerConfig)
    #: per-cell campaign shape (see :class:`CampaignRunner`)
    workers: int = 1
    shards: Optional[int] = None
    mode: str = "full"
    #: optional grid-wide budget, split over cells like shard_budgets
    total_budget: Optional[int] = None
    #: optional per-cell budget pins, keyed by (arch, contract, cpu)
    budget_overrides: Mapping[Tuple[str, str, str], int] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for axis, values, known in (
            ("arch", self.arches, architecture_names()),
            ("contract", self.contracts, contract_names()),
            ("cpu", self.cpus, preset_names()),
        ):
            if not values:
                raise ValueError(f"sweep {axis} axis must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(
                    f"duplicate {axis} values in {values!r}: a repeated "
                    "cell would rerun the identical campaign"
                )
            for value in values:
                if value not in known:
                    raise ValueError(
                        f"unknown {axis} {value!r}; "
                        f"available: {', '.join(known)}"
                    )
        valid_keys = {
            (cell.arch, cell.contract, cell.cpu) for cell in self.cells()
        }
        for key in self.budget_overrides:
            if key not in valid_keys:
                raise ValueError(
                    f"budget override {key!r} matches no grid cell"
                )

    def cells(self) -> List[SweepCell]:
        """Grid cells in deterministic arch-major order."""
        return [
            SweepCell(arch, contract, cpu)
            for arch in self.arches
            for contract in self.contracts
            for cpu in self.cpus
        ]

    def cell_budget(self, cell: SweepCell, index: int, count: int) -> int:
        override = self.budget_overrides.get(
            (cell.arch, cell.contract, cell.cpu)
        )
        if override is not None:
            return override
        if self.total_budget is not None:
            return shard_budgets(self.total_budget, count)[index]
        return self.base_config.num_test_cases

    def cell_config(self, cell: SweepCell, index: int = 0,
                    count: int = 1) -> FuzzerConfig:
        """The :class:`FuzzerConfig` one cell's campaign runs with."""
        return replace(
            self.base_config,
            arch=cell.arch,
            contract_name=cell.contract,
            cpu_preset=cell.cpu,
            cpu_config=None,
            seed=derive_cell_seed(self.base_config.seed, cell),
            num_test_cases=self.cell_budget(cell, index, count),
        )


@dataclass
class SweepCellResult:
    """Outcome of one cell's campaign."""

    cell: SweepCell
    seed: int
    campaign: CampaignReport

    @property
    def found(self) -> bool:
        return self.campaign.found

    @property
    def classification(self) -> Optional[str]:
        violation = self.campaign.violation
        return violation.classification if violation else None

    @property
    def time_to_first_violation(self) -> Optional[float]:
        """Wall-clock seconds inside the winning shard until detection
        (the Table 4 metric), or ``None`` without a violation."""
        violation = self.campaign.violation
        return violation.seconds_until_found if violation else None

    def matrix_entry(self) -> str:
        """The human-readable violation-matrix cell."""
        if not self.found:
            return "-"
        violation = self.campaign.violation
        return (
            f"{self.classification} "
            f"({violation.test_cases_until_found} cases, "
            f"{violation.seconds_until_found:.1f}s)"
        )

    def deterministic_report(self) -> Dict[str, object]:
        """The cell outcome minus anything scheduling-dependent.

        Wall-clock times, observed concurrency and cache counters are
        excluded, so for budget-bound full-mode sweeps this dict is
        identical across runs, worker counts, and cache on/off.
        """
        merged = self.campaign.merged
        violation = merged.violation
        report: Dict[str, object] = {
            "arch": self.cell.arch,
            "contract": self.cell.contract,
            "cpu": self.cell.cpu,
            "seed": self.seed,
            "shards": self.campaign.shards,
            "mode": self.campaign.mode,
            "test_cases": merged.test_cases,
            "inputs_tested": merged.inputs_tested,
            "patterns_covered": (
                len(merged.coverage.covered) if merged.coverage else 0
            ),
            "found": self.found,
            "winning_shard": self.campaign.winning_shard,
            "violation": None,
        }
        if violation is not None:
            report["violation"] = {
                "classification": violation.classification,
                "program_fingerprint": program_fingerprint(
                    violation.program, self.cell.arch
                ),
                "positions": [violation.position_a, violation.position_b],
                "test_cases_until_found": violation.test_cases_until_found,
                "inputs_until_found": violation.inputs_until_found,
            }
        return report

    def timing_report(self) -> Dict[str, object]:
        """The scheduling-dependent counters, reported separately."""
        merged = self.campaign.merged
        return {
            "wall_seconds": self.campaign.wall_seconds,
            "aggregate_seconds": merged.duration_seconds,
            "observed_concurrency": self.campaign.observed_concurrency,
            "seconds_until_found": self.time_to_first_violation,
            "contract_emulations": merged.contract_emulations,
            "trace_cache_hits": merged.trace_cache_hits,
            "trace_cache_disk_hits": merged.trace_cache_disk_hits,
            "cancelled_shards": self.campaign.cancelled_shards,
        }


@dataclass
class SweepReport:
    """Merged outcome of one grid sweep."""

    spec: SweepSpec
    results: List[SweepCellResult]
    wall_seconds: float
    cache_dir: Optional[str] = None

    @property
    def violations_found(self) -> int:
        return sum(1 for result in self.results if result.found)

    @property
    def trace_cache_disk_hits(self) -> int:
        """Traces reused from the shared on-disk cache across the sweep
        (nonzero when sibling shards, neighboring cells or an earlier
        run already emulated them)."""
        return sum(
            result.campaign.merged.trace_cache_disk_hits
            for result in self.results
        )

    def cell_result(self, cell: SweepCell) -> SweepCellResult:
        for result in self.results:
            if result.cell == cell:
                return result
        raise KeyError(cell.label)

    # -- rendering ---------------------------------------------------------

    def to_markdown(self) -> str:
        """The violation matrix: one ``contract x cpu`` table per arch."""
        lines: List[str] = ["# Sweep violation matrix", ""]
        for arch in self.spec.arches:
            lines.append(f"## {arch}")
            lines.append("")
            header = ["contract \\ cpu"] + list(self.spec.cpus)
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "---|" * len(header))
            for contract in self.spec.contracts:
                row = [contract]
                for cpu in self.spec.cpus:
                    result = self.cell_result(
                        SweepCell(arch, contract, cpu)
                    )
                    row.append(result.matrix_entry())
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
        lines.append(
            f"{self.violations_found}/{len(self.results)} cells violated "
            f"in {self.wall_seconds:.1f}s"
            + (
                f" ({self.trace_cache_disk_hits} traces reused from "
                f"{self.cache_dir})"
                if self.cache_dir
                else ""
            )
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """Full JSON report: deterministic cell reports under ``cells``,
        scheduling-dependent counters under ``timing``."""
        return {
            "grid": {
                "arches": list(self.spec.arches),
                "contracts": list(self.spec.contracts),
                "cpus": list(self.spec.cpus),
                "mode": self.spec.mode,
                "workers": self.spec.workers,
                "base_seed": self.spec.base_config.seed,
            },
            "cells": [
                result.deterministic_report() for result in self.results
            ],
            "timing": {
                result.cell.label: result.timing_report()
                for result in self.results
            },
            "wall_seconds": self.wall_seconds,
            "trace_cache_disk_hits": self.trace_cache_disk_hits,
        }

    def cell_reports_json(self) -> str:
        """Canonical JSON of the deterministic per-cell reports — the
        byte-comparable artifact for reproducibility checks."""
        return json.dumps(
            [result.deterministic_report() for result in self.results],
            indent=2,
            sort_keys=True,
        ) + "\n"

    def summary(self) -> str:
        cache = (
            f", {self.trace_cache_disk_hits} traces reused from disk"
            if self.cache_dir
            else ""
        )
        return (
            f"{self.violations_found}/{len(self.results)} cells violated "
            f"across {len(self.spec.arches)} arch(es) in "
            f"{self.wall_seconds:.1f}s{cache}"
        )


class SweepRunner:
    """Executes a :class:`SweepSpec` cell by cell.

    Cells run sequentially (parallelism lives *inside* a cell, via the
    campaign engine's shard workers); ``cache_dir`` points every cell
    and every shard worker at one shared persistent trace cache.
    """

    def __init__(self, spec: SweepSpec, cache_dir: Optional[str] = None):
        self.spec = spec
        self.cache_dir = (
            cache_dir
            if cache_dir is not None
            else spec.base_config.trace_cache_dir
        )

    def cell_configs(self) -> List[Tuple[SweepCell, FuzzerConfig]]:
        cells = self.spec.cells()
        configs = []
        for index, cell in enumerate(cells):
            config = self.spec.cell_config(cell, index, len(cells))
            if self.cache_dir is not None:
                config = replace(config, trace_cache_dir=self.cache_dir)
            configs.append((cell, config))
        return configs

    def run(self, progress=None) -> SweepReport:
        """Run the grid; ``progress`` is an optional callable invoked
        with (cell, campaign_report) after each cell completes."""
        start = time.perf_counter()
        if self.cache_dir is not None:
            # create eagerly so an empty grid still leaves a valid dir
            PersistentTraceCache(self.cache_dir)
        results: List[SweepCellResult] = []
        for cell, config in self.cell_configs():
            campaign = CampaignRunner(
                config,
                workers=self.spec.workers,
                shards=self.spec.shards,
                mode=self.spec.mode,
            ).run()
            results.append(SweepCellResult(cell, config.seed, campaign))
            if progress is not None:
                progress(cell, campaign)
        return SweepReport(
            spec=self.spec,
            results=results,
            wall_seconds=time.perf_counter() - start,
            cache_dir=self.cache_dir,
        )


def run_sweep(
    spec: SweepSpec, cache_dir: Optional[str] = None, progress=None
) -> SweepReport:
    """Convenience one-call grid sweep."""
    return SweepRunner(spec, cache_dir=cache_dir).run(progress=progress)


__all__ = [
    "SweepCell",
    "SweepCellResult",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "derive_cell_seed",
    "run_sweep",
]
