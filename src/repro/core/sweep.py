"""Cross-ISA sweeps: campaign grids over ``arch x contract x cpu``.

The paper's headline evaluation is a grid (Table 3): run the MRT loop
once per target CPU per contract and report which cells surface
violations, and how fast (Table 4). With the architecture-plugin layer
the same grid extends across ISAs, so fence/serialization findings are
reported *per architecture* instead of per hard-coded ISA ("Don't sit
on the fence"): the same sweep shows LFENCE-bounded speculation on
x86-64 next to DSB/ISB-bounded speculation on AArch64.

- :class:`SweepSpec` describes the grid: the three axes, a base
  :class:`FuzzerConfig` every cell inherits, and the per-cell campaign
  shape (workers/shards/mode). Each cell fuzzes with a deterministic
  seed derived by :func:`derive_cell_seed` — the cell-level mirror of
  :func:`repro.core.campaign.derive_shard_seed`. The derivation mixes
  the base seed with the ``(arch, contract)`` coordinates but
  **deliberately not the cpu**: cells along the cpu axis replay the
  identical program/input battery, which is both the fair comparison
  (same tests against every CPU) and what lets them share contract
  traces through the persistent cache.
- :class:`SweepRunner` executes each cell through the existing
  :class:`~repro.core.campaign.CampaignRunner` and merges the outcomes
  into a :class:`SweepReport`: the violation matrix, detection time to
  first violation per cell, and observed shard concurrency. Cells are
  independent campaigns, so ``max_parallel_cells`` (CLI
  ``--parallel-cells``) fans them out over worker processes; cell seeds
  are derived from the grid coordinates alone, so the scheduling order
  never changes a deterministic cell report, and
  :func:`cell_worker_budget` caps each concurrent cell's shard workers
  so the nested pools never oversubscribe the host. When a
  ``cache_dir`` is set, every cell (and every shard worker process
  inside a cell) shares one on-disk
  :class:`~repro.core.trace_cache.PersistentTraceCache`, so cells with
  the same ``(arch, contract)`` pair emulate each trace once; a
  ``trace_cache_max_bytes`` bound on the base config arms the cache's
  size-bounded GC, which the runner also finalizes after the grid.
- ``schedule="work-stealing"`` replaces the static per-cell fan-out
  with a shared unit queue: every cell is decomposed into its
  shard-sized work units up front, and a flat pool of long-lived
  workers drains the queue, so workers finishing a cheap cell's units
  steal the pending units of expensive ones instead of idling. Unit
  seeds/budgets come from the same
  :func:`~repro.core.campaign.shard_fuzzer_config` derivation the
  static path uses, so merged cell reports are byte-identical to the
  static scheduler's. A ``journal_dir`` checkpoints each completed
  unit atomically (:class:`~repro.core.journal.CampaignJournal`);
  ``resume=True`` replays journaled units and dispatches only the
  missing ones, and a worker that dies mid-unit is respawned with its
  unit requeued rather than failing the sweep.
- :class:`SweepReport` renders as JSON and as a markdown matrix (one
  ``contract x cpu`` table per architecture). The per-cell
  ``deterministic_report()`` dicts exclude wall-clock and cache
  counters, so for budget-bound sweeps they are byte-identical across
  runs, worker counts, and cache on/off — the sweep-level analogue of
  the campaign engine's merged-report invariance.

CLI::

    python -m repro sweep --arch x86_64,aarch64 \
        --contract CT-SEQ,CT-COND --cpu skylake,coffee-lake -n 100
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import multiprocessing.connection
import queue as queue_module
import signal
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro import faults
from repro.arch import architecture_names
from repro.contracts import contract_names
from repro.core.campaign import (
    CampaignCancelled,
    CampaignReport,
    CampaignRunner,
    default_start_context,
    derive_shard_seed,
    merge_reports,
    shard_budgets,
    shard_fuzzer_config,
)
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import Fuzzer, FuzzingReport
from repro.core.journal import CampaignJournal, sweep_payload
from repro.core.trace_cache import PersistentTraceCache, program_fingerprint
from repro.uarch.config import preset_names


@dataclass(frozen=True)
class SweepCell:
    """One grid coordinate: an (arch, contract, cpu) triple."""

    arch: str
    contract: str
    cpu: str

    @property
    def label(self) -> str:
        return f"{self.arch}/{self.contract}/{self.cpu}"


def derive_cell_seed(base_seed: int, cell: SweepCell) -> int:
    """Deterministic, well-separated seed for one sweep cell.

    Mirrors :func:`~repro.core.campaign.derive_shard_seed`: the cell's
    ``(arch, contract)`` coordinates are digested into a stable index
    and pushed through the same splitmix64 finalizer, so nearby base
    seeds or similar coordinates still yield uncorrelated streams. The
    cpu coordinate deliberately does not participate: cells along the
    cpu axis run the identical program/input battery (fair comparison,
    maximal trace-cache sharing); within a cell, shards then derive
    their seeds from this value as usual.
    """
    digest = hashlib.sha1(
        f"{cell.arch}|{cell.contract}".encode("utf-8")
    ).digest()
    coordinate = int.from_bytes(digest[:8], "big")
    return derive_shard_seed(base_seed, coordinate)


def cell_worker_budget(workers: int, parallel_cells: int) -> int:
    """Shard workers each cell may run when cells execute in parallel.

    The host budget is ``max(workers, parallel_cells)`` processes: with
    one cell at a time a cell gets the full ``workers``; with several,
    each gets ``workers // parallel_cells`` (at least one), so
    ``cell processes x shard workers per cell`` never exceeds the
    budget. Only the *pool size* shrinks — the shard partition (seeds
    and budgets) is pinned separately, which is what keeps parallel and
    sequential sweeps byte-identical.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if parallel_cells < 1:
        raise ValueError("parallel_cells must be >= 1")
    if parallel_cells == 1:
        return workers
    return max(1, workers // parallel_cells)


def _run_cell_worker(task, result_queue) -> None:
    """Process entry point for one parallel sweep cell.

    Runs the cell's campaign and ships ``(index, error, report)`` back;
    a failure travels as a formatted traceback instead of poisoning the
    queue. The process is non-daemonic, so the campaign runner inside is
    free to spawn its own shard pool and cancel-event manager — the
    first-violation early-cancel machinery works unchanged across
    parallel cells.
    """
    # The scheduler terminates sibling workers when one cell fails.
    # SIGTERM's default action would skip Python cleanup and orphan
    # this worker's own children (shard pool, cancel-event manager) to
    # keep fuzzing; converting it to SystemExit unwinds the campaign
    # runner's context managers so the whole cell dies with its worker.
    try:
        signal.signal(signal.SIGTERM, lambda *_args: sys.exit(1))
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        pass
    index, config, workers, shards, mode = task
    try:
        report = CampaignRunner(
            config, workers=workers, shards=shards, mode=mode
        ).run()
    except SystemExit:
        raise
    except BaseException:
        result_queue.put((index, traceback.format_exc(), None))
    else:
        result_queue.put((index, None, report))


def _run_unit(config: FuzzerConfig) -> FuzzingReport:
    """One work-stealing unit: a single shard's fuzzing run.

    Module-level (rather than inline in the worker loop) so fork-based
    tests can intercept it to simulate worker death mid-unit. The
    ``sweep.unit`` fault site kills the worker process outright (the
    chaos suite's stand-in for OOM/SIGKILL); the scheduler's requeue
    path must absorb it without changing the merged report.
    """
    faults.maybe_exit("sweep.unit")
    return Fuzzer(config).run()


def _steal_worker(worker_id, conn) -> None:
    """Process entry point for one work-stealing worker.

    Pulls ``(cell_index, shard_index, config)`` units off its private
    duplex pipe until the ``None`` sentinel (or the parent hangs up),
    shipping ``(worker_id, cell_index, shard_index, error, report)``
    back for each. Unlike the static cell workers, these processes are
    long-lived across many units — stealing is cheap because only the
    pickled config travels, never a process spawn.

    The pipe is deliberately *not* a ``multiprocessing.Queue``: queue
    puts spool through a feeder thread holding a write lock shared by
    every worker, so a worker killed mid-unit could take that lock to
    its grave and wedge all its siblings. Here each result is sent
    synchronously from this thread over a pipe nobody else writes, so
    a death inside :func:`_run_unit` holds no shared state at all —
    the parent just sees EOF on this worker's pipe.
    """
    # Same SIGTERM discipline as _run_cell_worker: unwind instead of
    # dying mid-cleanup when the scheduler tears the pool down.
    try:
        signal.signal(signal.SIGTERM, lambda *_args: sys.exit(1))
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        pass
    while True:
        try:
            task = conn.recv()
        except EOFError:  # parent died mid-dispatch
            return
        if task is None:
            return
        cell_index, shard_index, config = task
        try:
            report = _run_unit(config)
        except SystemExit:
            raise
        except BaseException:
            conn.send(
                (worker_id, cell_index, shard_index,
                 traceback.format_exc(), None)
            )
        else:
            conn.send((worker_id, cell_index, shard_index, None, report))


@dataclass
class SweepSpec:
    """A cartesian campaign grid over ``arch x contract x cpu``.

    Every cell inherits ``base_config`` with its arch/contract/cpu and
    seed replaced. The per-cell test-case budget is
    ``base_config.num_test_cases`` unless ``total_budget`` is set, in
    which case the total is split over the cells with
    :func:`~repro.core.campaign.shard_budgets` (the same near-equal
    slicing the campaign engine uses for shards); ``budget_overrides``
    pins individual cells (keyed by ``(arch, contract, cpu)``) for
    heterogeneous grids like Table 3.
    """

    arches: Tuple[str, ...] = ("x86_64",)
    contracts: Tuple[str, ...] = ("CT-SEQ",)
    cpus: Tuple[str, ...] = ("skylake",)
    base_config: FuzzerConfig = field(default_factory=FuzzerConfig)
    #: per-cell campaign shape (see :class:`CampaignRunner`)
    workers: int = 1
    shards: Optional[int] = None
    mode: str = "full"
    #: optional grid-wide budget, split over cells like shard_budgets
    total_budget: Optional[int] = None
    #: optional per-cell budget pins, keyed by (arch, contract, cpu)
    budget_overrides: Mapping[Tuple[str, str, str], int] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for axis, values, known in (
            ("arch", self.arches, architecture_names()),
            ("contract", self.contracts, contract_names()),
            ("cpu", self.cpus, preset_names()),
        ):
            if not values:
                raise ValueError(f"sweep {axis} axis must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(
                    f"duplicate {axis} values in {values!r}: a repeated "
                    "cell would rerun the identical campaign"
                )
            for value in values:
                if value not in known:
                    raise ValueError(
                        f"unknown {axis} {value!r}; "
                        f"available: {', '.join(known)}"
                    )
        valid_keys = {
            (cell.arch, cell.contract, cell.cpu) for cell in self.cells()
        }
        for key in self.budget_overrides:
            if key not in valid_keys:
                raise ValueError(
                    f"budget override {key!r} matches no grid cell"
                )

    def cells(self) -> List[SweepCell]:
        """Grid cells in deterministic arch-major order."""
        return [
            SweepCell(arch, contract, cpu)
            for arch in self.arches
            for contract in self.contracts
            for cpu in self.cpus
        ]

    def cell_budget(self, cell: SweepCell, index: int, count: int) -> int:
        override = self.budget_overrides.get(
            (cell.arch, cell.contract, cell.cpu)
        )
        if override is not None:
            return override
        if self.total_budget is not None:
            return shard_budgets(self.total_budget, count)[index]
        return self.base_config.num_test_cases

    def cell_config(self, cell: SweepCell, index: int = 0,
                    count: int = 1) -> FuzzerConfig:
        """The :class:`FuzzerConfig` one cell's campaign runs with."""
        return replace(
            self.base_config,
            arch=cell.arch,
            contract_name=cell.contract,
            cpu_preset=cell.cpu,
            cpu_config=None,
            seed=derive_cell_seed(self.base_config.seed, cell),
            num_test_cases=self.cell_budget(cell, index, count),
        )


@dataclass
class SweepCellResult:
    """Outcome of one cell's campaign."""

    cell: SweepCell
    seed: int
    campaign: CampaignReport

    @property
    def found(self) -> bool:
        return self.campaign.found

    @property
    def classification(self) -> Optional[str]:
        violation = self.campaign.violation
        return violation.classification if violation else None

    @property
    def time_to_first_violation(self) -> Optional[float]:
        """Wall-clock seconds inside the winning shard until detection
        (the Table 4 metric), or ``None`` without a violation."""
        violation = self.campaign.violation
        return violation.seconds_until_found if violation else None

    def matrix_entry(self) -> str:
        """The human-readable violation-matrix cell."""
        if not self.found:
            return "-"
        violation = self.campaign.violation
        return (
            f"{self.classification} "
            f"({violation.test_cases_until_found} cases, "
            f"{violation.seconds_until_found:.1f}s)"
        )

    def deterministic_report(self) -> Dict[str, object]:
        """The cell outcome minus anything scheduling-dependent.

        Wall-clock times, observed concurrency and cache counters are
        excluded, so for budget-bound full-mode sweeps this dict is
        identical across runs, worker counts, and cache on/off.
        """
        merged = self.campaign.merged
        violation = merged.violation
        report: Dict[str, object] = {
            "arch": self.cell.arch,
            "contract": self.cell.contract,
            "cpu": self.cell.cpu,
            "seed": self.seed,
            "shards": self.campaign.shards,
            "mode": self.campaign.mode,
            "test_cases": merged.test_cases,
            "inputs_tested": merged.inputs_tested,
            "prescreened_inert": merged.prescreened_inert,
            "patterns_covered": (
                len(merged.coverage.covered) if merged.coverage else 0
            ),
            "found": self.found,
            "winning_shard": self.campaign.winning_shard,
            "violation": None,
        }
        if violation is not None:
            report["violation"] = {
                "classification": violation.classification,
                "program_fingerprint": program_fingerprint(
                    violation.program, self.cell.arch
                ),
                "positions": [violation.position_a, violation.position_b],
                "test_cases_until_found": violation.test_cases_until_found,
                "inputs_until_found": violation.inputs_until_found,
            }
        return report

    def timing_report(self) -> Dict[str, object]:
        """The scheduling-dependent counters, reported separately."""
        merged = self.campaign.merged
        return {
            "wall_seconds": self.campaign.wall_seconds,
            "aggregate_seconds": merged.duration_seconds,
            "observed_concurrency": self.campaign.observed_concurrency,
            "seconds_until_found": self.time_to_first_violation,
            "contract_emulations": merged.contract_emulations,
            "trace_cache_hits": merged.trace_cache_hits,
            "trace_cache_disk_hits": merged.trace_cache_disk_hits,
            "trace_cache_gc_evictions": merged.trace_cache_gc_evictions,
            "trace_cache_gc_bytes": merged.trace_cache_gc_bytes,
            "trace_cache_disk_write_errors": (
                merged.trace_cache_disk_write_errors
            ),
            "cancelled_shards": self.campaign.cancelled_shards,
        }


@dataclass
class SweepReport:
    """Merged outcome of one grid sweep."""

    spec: SweepSpec
    results: List[SweepCellResult]
    wall_seconds: float
    cache_dir: Optional[str] = None
    #: cell-level parallelism the runner was allowed (scheduling only —
    #: deterministic cell reports are identical for every value)
    max_parallel_cells: int = 1
    #: shard workers each cell actually ran with (the budgeted count)
    cell_workers: int = 1
    #: scheduler that placed the work ("static" | "work-stealing");
    #: scheduling only — cell reports are byte-identical either way
    schedule: str = "static"
    #: size of the shared work-stealing pool (``None`` under static)
    steal_workers: Optional[int] = None
    #: disk entries / bytes the trace-cache GC evicted across the sweep
    #: (cells' own passes plus the runner's finalizing pass)
    trace_cache_gc_evictions: int = 0
    trace_cache_gc_bytes: int = 0
    #: disk footprint of the shared cache after the finalizing GC pass
    #: (``None`` without a cache directory)
    trace_cache_disk_bytes: Optional[int] = None

    @property
    def violations_found(self) -> int:
        return sum(1 for result in self.results if result.found)

    @property
    def trace_cache_disk_hits(self) -> int:
        """Traces reused from the shared on-disk cache across the sweep
        (nonzero when sibling shards, neighboring cells or an earlier
        run already emulated them)."""
        return sum(
            result.campaign.merged.trace_cache_disk_hits
            for result in self.results
        )

    @property
    def trace_cache_disk_write_errors(self) -> int:
        """Disk-cache publications that failed with an ``OSError`` and
        degraded to no-persist across the sweep (ENOSPC, read-only
        cache, ...). Nonzero means the run was correct but slower than
        a healthy-disk run — the misses were re-emulated."""
        return sum(
            result.campaign.merged.trace_cache_disk_write_errors
            for result in self.results
        )

    def cell_result(self, cell: SweepCell) -> SweepCellResult:
        for result in self.results:
            if result.cell == cell:
                return result
        raise KeyError(cell.label)

    # -- rendering ---------------------------------------------------------

    def to_markdown(self) -> str:
        """The violation matrix: one ``contract x cpu`` table per arch."""
        lines: List[str] = ["# Sweep violation matrix", ""]
        for arch in self.spec.arches:
            lines.append(f"## {arch}")
            lines.append("")
            header = ["contract \\ cpu"] + list(self.spec.cpus)
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "---|" * len(header))
            for contract in self.spec.contracts:
                row = [contract]
                for cpu in self.spec.cpus:
                    result = self.cell_result(
                        SweepCell(arch, contract, cpu)
                    )
                    row.append(result.matrix_entry())
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
        lines.append(
            f"{self.violations_found}/{len(self.results)} cells violated "
            f"in {self.wall_seconds:.1f}s"
            + (
                f" ({self.trace_cache_disk_hits} traces reused from "
                f"{self.cache_dir})"
                if self.cache_dir
                else ""
            )
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """Full JSON report: deterministic cell reports under ``cells``,
        scheduling-dependent counters under ``timing``."""
        return {
            "grid": {
                "arches": list(self.spec.arches),
                "contracts": list(self.spec.contracts),
                "cpus": list(self.spec.cpus),
                "mode": self.spec.mode,
                "workers": self.spec.workers,
                "base_seed": self.spec.base_config.seed,
            },
            "cells": [
                result.deterministic_report() for result in self.results
            ],
            "timing": {
                result.cell.label: result.timing_report()
                for result in self.results
            },
            "scheduling": {
                "max_parallel_cells": self.max_parallel_cells,
                "cell_workers": self.cell_workers,
                "schedule": self.schedule,
                "steal_workers": self.steal_workers,
            },
            "trace_cache": {
                "disk_hits": self.trace_cache_disk_hits,
                "gc_evictions": self.trace_cache_gc_evictions,
                "gc_bytes": self.trace_cache_gc_bytes,
                "disk_bytes": self.trace_cache_disk_bytes,
                "disk_write_errors": self.trace_cache_disk_write_errors,
                "max_bytes": self.spec.base_config.trace_cache_max_bytes,
            },
            "wall_seconds": self.wall_seconds,
            "trace_cache_disk_hits": self.trace_cache_disk_hits,
        }

    def cell_reports_json(self) -> str:
        """Canonical JSON of the deterministic per-cell reports — the
        byte-comparable artifact for reproducibility checks."""
        return json.dumps(
            [result.deterministic_report() for result in self.results],
            indent=2,
            sort_keys=True,
        ) + "\n"

    def report_digest(self) -> str:
        """sha1 over :meth:`cell_reports_json` — the sweep-level analogue
        of :meth:`CampaignReport.report_digest`, equal across schedulers,
        worker counts, and kill-and-resume."""
        return hashlib.sha1(
            self.cell_reports_json().encode("utf-8")
        ).hexdigest()

    def summary(self) -> str:
        cache = (
            f", {self.trace_cache_disk_hits} traces reused from disk"
            if self.cache_dir
            else ""
        )
        return (
            f"{self.violations_found}/{len(self.results)} cells violated "
            f"across {len(self.spec.arches)} arch(es) in "
            f"{self.wall_seconds:.1f}s{cache}"
        )


class SweepRunner:
    """Executes a :class:`SweepSpec`, up to ``max_parallel_cells`` at once.

    Cells are independent campaigns with coordinate-derived seeds, so
    scheduling them onto worker processes changes wall clock only:
    deterministic cell reports are byte-identical for every
    ``max_parallel_cells`` value. When cells run in parallel, each one's
    shard-worker pool is capped by :func:`cell_worker_budget` (the shard
    *partition* — seeds and budgets — stays exactly as specified), and
    cell workers are non-daemonic processes, so a cell's own
    first-violation early-cancel machinery (shard pool + cancel-event
    manager) runs unchanged inside them. ``cache_dir`` points every
    cell and every shard worker at one shared persistent trace cache;
    ``base_config.trace_cache_max_bytes`` bounds that cache's disk
    footprint, with a finalizing GC pass after the grid.
    """

    SCHEDULES = ("static", "work-stealing")
    #: how many times one unit may be re-dispatched after its worker died
    MAX_UNIT_RETRIES = 2
    #: backoff for worker-process spawn failures (EAGAIN under fork
    #: pressure); deterministic jitter, so retry timing is reproducible
    SPAWN_RETRY = faults.RetryPolicy(
        attempts=3, base_delay=0.05, max_delay=1.0
    )

    def __init__(
        self,
        spec: SweepSpec,
        cache_dir: Optional[str] = None,
        max_parallel_cells: int = 1,
        schedule: str = "static",
        journal_dir: Optional[str] = None,
        resume: bool = False,
    ):
        if max_parallel_cells < 1:
            raise ValueError("max_parallel_cells must be >= 1")
        if schedule not in self.SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; "
                f"expected one of {self.SCHEDULES}"
            )
        if schedule == "work-stealing" and spec.mode != "full":
            raise ValueError(
                "work-stealing requires mode='full': first-violation "
                "cancel timing depends on shard placement, which stealing "
                "deliberately randomizes across cells"
            )
        if resume and journal_dir is None:
            raise ValueError("resume requires a journal directory")
        if journal_dir is not None and schedule != "work-stealing":
            raise ValueError(
                "sweep journaling requires schedule='work-stealing' "
                "(static cells run whole campaigns inside opaque workers, "
                "so there is no per-shard completion to checkpoint)"
            )
        self.spec = spec
        self.max_parallel_cells = max_parallel_cells
        self.schedule = schedule
        self.journal_dir = journal_dir
        self.resume = resume
        self.cache_dir = (
            cache_dir
            if cache_dir is not None
            else spec.base_config.trace_cache_dir
        )

    def cell_configs(self) -> List[Tuple[SweepCell, FuzzerConfig]]:
        cells = self.spec.cells()
        configs = []
        for index, cell in enumerate(cells):
            config = self.spec.cell_config(cell, index, len(cells))
            if self.cache_dir is not None:
                config = replace(config, trace_cache_dir=self.cache_dir)
            configs.append((cell, config))
        return configs

    def run(self, progress=None, should_stop=None) -> SweepReport:
        """Run the grid; ``progress`` is an optional callable invoked
        with (cell, campaign_report) after each cell completes — in
        completion order when cells run in parallel. ``should_stop`` is
        an optional zero-argument callable polled while cells run (the
        service's cancel/deadline signal); when it fires the sweep
        raises :class:`~repro.core.campaign.CampaignCancelled` —
        journaled unit checkpoints survive, so a cancelled journaled
        sweep resumes like a killed one."""
        start = time.perf_counter()
        cache: Optional[PersistentTraceCache] = None
        max_bytes = self.spec.base_config.trace_cache_max_bytes
        if self.cache_dir is not None:
            # create eagerly so an empty grid still leaves a valid dir
            cache = PersistentTraceCache(
                self.cache_dir,
                max_bytes=max_bytes,
                compress=self.spec.base_config.trace_cache_compress,
            )
        pairs = self.cell_configs()
        parallel = min(self.max_parallel_cells, len(pairs))
        steal_workers: Optional[int] = None
        if self.schedule == "work-stealing":
            results, steal_workers = self._run_workstealing(
                pairs, progress, should_stop
            )
        elif parallel <= 1:
            results = self._run_sequential(pairs, progress, should_stop)
        else:
            results = self._run_parallel(
                pairs, parallel, progress, should_stop
            )
        gc_evictions = sum(
            result.campaign.merged.trace_cache_gc_evictions
            for result in results
        )
        gc_bytes = sum(
            result.campaign.merged.trace_cache_gc_bytes for result in results
        )
        disk_bytes: Optional[int] = None
        if cache is not None:
            if max_bytes is not None:
                # finalizing pass: concurrent writers enforce the bound
                # cooperatively, so trim whatever the last writers left;
                # its scan doubles as the footprint measurement
                evicted, freed = cache.gc()
                gc_evictions += evicted
                gc_bytes += freed
                disk_bytes = cache.known_disk_bytes()
            else:
                disk_bytes = cache.disk_usage_bytes()
        return SweepReport(
            spec=self.spec,
            results=results,
            wall_seconds=time.perf_counter() - start,
            cache_dir=self.cache_dir,
            max_parallel_cells=self.max_parallel_cells,
            cell_workers=cell_worker_budget(self.spec.workers, parallel),
            schedule=self.schedule,
            steal_workers=steal_workers,
            trace_cache_gc_evictions=gc_evictions,
            trace_cache_gc_bytes=gc_bytes,
            trace_cache_disk_bytes=disk_bytes,
        )

    def _run_sequential(
        self, pairs, progress, should_stop=None
    ) -> List[SweepCellResult]:
        results: List[SweepCellResult] = []
        for cell, config in pairs:
            # the campaign runner polls should_stop itself and raises
            # CampaignCancelled mid-cell; this loop only needs to stop
            # between cells
            if should_stop is not None and should_stop():
                raise CampaignCancelled(
                    f"sweep stopped before cell {cell.label} "
                    f"({len(results)}/{len(pairs)} cell(s) done)"
                )
            campaign = CampaignRunner(
                config,
                workers=self.spec.workers,
                shards=self.spec.shards,
                mode=self.spec.mode,
            ).run(should_stop=should_stop)
            results.append(SweepCellResult(cell, config.seed, campaign))
            if progress is not None:
                progress(cell, campaign)
        return results

    def _run_parallel(
        self, pairs, parallel: int, progress, should_stop=None
    ) -> List[SweepCellResult]:
        """Fan the cells out over ``parallel`` worker processes.

        A hand-rolled scheduler rather than a ``Pool``: cell workers
        must be non-daemonic (each may spawn its own shard pool and
        cancel-event manager), and forking only from the scheduler loop
        keeps the parent single-threaded. The shard partition is pinned
        explicitly so shrinking the per-cell pool cannot shift it.
        """
        # pin the partition the sequential path would use implicitly
        shards = (
            self.spec.shards
            if self.spec.shards is not None
            else self.spec.workers
        )
        workers = cell_worker_budget(self.spec.workers, parallel)
        context = default_start_context()
        result_queue = context.Queue()
        tasks = deque(
            (index, config, workers, shards, self.spec.mode)
            for index, (_cell, config) in enumerate(pairs)
        )
        #: cell index -> worker process, for the cells still in flight
        in_flight: Dict[int, multiprocessing.Process] = {}
        processes: List[multiprocessing.Process] = []
        results: List[Optional[SweepCellResult]] = [None] * len(pairs)

        def launch() -> None:
            task = tasks.popleft()
            process = context.Process(
                target=_run_cell_worker, args=(task, result_queue)
            )
            process.start()
            in_flight[task[0]] = process
            processes.append(process)

        try:
            for _ in range(min(parallel, len(tasks))):
                launch()
            collected = 0
            while collected < len(pairs):
                if should_stop is not None and should_stop():
                    # the except-clause below terminates in-flight cell
                    # workers; static cells have no checkpoints to keep
                    raise CampaignCancelled(
                        f"sweep stopped with {collected}/{len(pairs)} "
                        "cell(s) collected"
                    )
                try:
                    index, error, campaign = result_queue.get(timeout=1.0)
                except queue_module.Empty:
                    # a worker killed by the OS (OOM, signal) can never
                    # enqueue its result — surface it instead of
                    # blocking forever. exitcode 0 with a pending
                    # result just means the payload is still in transit
                    for cell_index, process in in_flight.items():
                        if not process.is_alive() and process.exitcode != 0:
                            raise RuntimeError(
                                f"sweep cell {pairs[cell_index][0].label} "
                                f"worker died with exit code "
                                f"{process.exitcode} before reporting"
                            )
                    continue
                collected += 1
                in_flight.pop(index, None)
                cell, config = pairs[index]
                if error is not None:
                    raise RuntimeError(
                        f"sweep cell {cell.label} failed in its worker "
                        f"process:\n{error}"
                    )
                results[index] = SweepCellResult(cell, config.seed, campaign)
                if progress is not None:
                    progress(cell, campaign)
                if tasks:
                    launch()
        except BaseException:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for process in processes:
                process.join()
        return results

    # -- work-stealing -----------------------------------------------------

    def _steal_pool_size(self) -> int:
        """Same host budget the static scheduler gets: ``workers``
        processes when cells run one at a time, ``max_parallel_cells``
        when the grid fans out — whichever is larger."""
        return max(self.spec.workers, self.max_parallel_cells)

    def _resolved_shards(self) -> int:
        """The shard partition, pinned exactly like the static parallel
        path pins it — this is what keeps the two schedulers
        byte-identical."""
        return (
            self.spec.shards
            if self.spec.shards is not None
            else self.spec.workers
        )

    def _run_workstealing(
        self, pairs, progress, should_stop=None
    ) -> Tuple[List[SweepCellResult], int]:
        """Decompose every cell into shard-sized units on one shared
        queue and drain it with a flat worker pool.

        Units carry their own :func:`~repro.core.campaign.
        shard_fuzzer_config`-derived seed and budget, so *which* worker
        runs a unit (the stealing) is pure scheduling: once a cell's
        shard reports are all in, merging them in shard order
        reproduces the static scheduler's campaign report byte for
        byte. Workers that finish a cheap cell's units immediately pull
        pending units of expensive cells instead of idling.

        With a journal, each completed unit is checkpointed atomically,
        and ``resume`` replays journaled units instead of re-running
        them. Returns ``(results, pool_size)``.
        """
        shards = self._resolved_shards()
        units: List[Tuple[int, int, FuzzerConfig]] = []
        for cell_index, (_cell, config) in enumerate(pairs):
            for shard_index in range(shards):
                units.append(
                    (
                        cell_index,
                        shard_index,
                        shard_fuzzer_config(config, shard_index, shards),
                    )
                )

        journal: Optional[CampaignJournal] = None
        shard_reports: Dict[int, Dict[int, FuzzingReport]] = {
            index: {} for index in range(len(pairs))
        }
        if self.journal_dir is not None:
            journal = CampaignJournal(self.journal_dir)
            journal.open(sweep_payload(self.spec, shards), resume=self.resume)
            if self.resume:
                for (cell, shard), report in journal.completed().items():
                    if 0 <= cell < len(pairs) and 0 <= shard < shards:
                        shard_reports[cell][shard] = report

        pool_size = self._steal_pool_size()
        start = time.perf_counter()
        results: List[Optional[SweepCellResult]] = [None] * len(pairs)

        def finish_cell(cell_index: int) -> None:
            cell, config = pairs[cell_index]
            reports = [
                shard_reports[cell_index][index] for index in range(shards)
            ]
            merged, winner = merge_reports(reports)
            campaign = CampaignReport(
                merged=merged,
                shard_reports=reports,
                winning_shard=winner,
                workers=pool_size,
                wall_seconds=time.perf_counter() - start,
                mode="full",
            )
            results[cell_index] = SweepCellResult(cell, config.seed, campaign)
            if progress is not None:
                progress(cell, campaign)

        # cells fully replayed from the journal finish before any worker
        # spawns; a complete journal means zero units dispatched
        for cell_index in range(len(pairs)):
            if len(shard_reports[cell_index]) == shards:
                finish_cell(cell_index)

        pending = deque(
            unit
            for unit in units
            if unit[1] not in shard_reports[unit[0]]
        )
        if pending:
            if min(pool_size, len(pending)) <= 1:
                # one process total: run units inline, same order
                while pending:
                    if should_stop is not None and should_stop():
                        raise CampaignCancelled(
                            f"sweep stopped with {len(pending)} unit(s) "
                            "pending"
                        )
                    cell_index, shard_index, config = pending.popleft()
                    report = _run_unit(config)
                    if journal is not None:
                        journal.record(cell_index, shard_index, report)
                    shard_reports[cell_index][shard_index] = report
                    if len(shard_reports[cell_index]) == shards:
                        finish_cell(cell_index)
            else:
                self._steal_loop(
                    pairs, pending, pool_size, journal,
                    shard_reports, shards, finish_cell, should_stop,
                )
        return results, pool_size

    def _steal_loop(
        self, pairs, pending, pool_size, journal,
        shard_reports, shards, finish_cell, should_stop=None,
    ) -> None:
        """The shared-queue scheduler: dispatch units to long-lived
        workers, requeue and respawn on worker death.

        Each worker gets a private duplex pipe; the parent hands an
        idle worker the next pending unit the moment its previous
        result arrives, so the parent always knows which unit every
        worker holds. That bookkeeping is what turns PR 4's liveness
        detection from fail-fast into self-healing, and the per-worker
        pipes are what make it *sound*: a worker that dies mid-unit
        (OOM, signal) shows up as EOF on its own pipe, its unit is
        pushed back onto the queue and a replacement process spawned,
        up to :attr:`MAX_UNIT_RETRIES` per unit. Because no pipe is
        shared between workers, one death can never strand another
        worker's results behind a leaked queue lock or a half-spooled
        message.
        """
        context = default_start_context()
        #: worker id -> {"process", "conn", "unit"} for live workers
        workers: Dict[int, Dict[str, object]] = {}
        finished: List[multiprocessing.Process] = []
        retries: Dict[Tuple[int, int], int] = {}
        next_worker_id = 0

        def spawn() -> int:
            nonlocal next_worker_id
            worker_id = next_worker_id
            next_worker_id += 1
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_steal_worker, args=(worker_id, child_conn)
            )

            def start() -> None:
                faults.inject_oserror("sweep.spawn")
                process.start()

            # fork can fail transiently (EAGAIN under process pressure);
            # retry with deterministic backoff before failing the sweep
            self.SPAWN_RETRY.call(start)
            # close the parent's copy so the worker's death is the only
            # thing that can EOF this pipe
            child_conn.close()
            workers[worker_id] = {
                "process": process, "conn": parent_conn, "unit": None,
            }
            return worker_id

        def retire(worker_id: int) -> None:
            # no work left: stop the worker (a later death-requeue
            # spawns a fresh replacement, so nothing is stranded)
            state = workers.pop(worker_id)
            try:
                state["conn"].send(None)
            except (BrokenPipeError, OSError):
                pass  # already dead with no unit: nothing lost
            state["conn"].close()
            finished.append(state["process"])

        def reap(worker_id: int) -> None:
            # a worker died: requeue its unit onto a fresh process
            # instead of failing the sweep
            state = workers.pop(worker_id)
            process = state["process"]
            process.join()
            finished.append(process)
            state["conn"].close()
            unit = state["unit"]
            if unit is None:
                return
            key = (unit[0], unit[1])
            retries[key] = retries.get(key, 0) + 1
            if retries[key] > self.MAX_UNIT_RETRIES:
                raise RuntimeError(
                    f"sweep cell {pairs[unit[0]][0].label} "
                    f"shard {unit[1]} worker died "
                    f"{retries[key]} times (last exit code "
                    f"{process.exitcode}); giving up"
                )
            pending.appendleft(unit)
            dispatch(spawn())

        def dispatch(worker_id: int) -> None:
            if not pending:
                retire(worker_id)
                return
            state = workers[worker_id]
            unit = pending.popleft()
            state["unit"] = unit
            try:
                state["conn"].send(unit)
            except (BrokenPipeError, OSError):
                # died between its last result and this dispatch
                reap(worker_id)

        outstanding = len(pending)
        try:
            for _ in range(min(pool_size, len(pending))):
                dispatch(spawn())
            while outstanding > 0:
                if should_stop is not None and should_stop():
                    # the except-clause terminates workers; journaled
                    # unit checkpoints persist, so a resume finishes
                    # exactly the units this stop abandoned
                    raise CampaignCancelled(
                        f"sweep stopped with {outstanding} unit(s) "
                        "outstanding"
                    )
                conn_map = {
                    state["conn"]: worker_id
                    for worker_id, state in workers.items()
                }
                ready = multiprocessing.connection.wait(
                    list(conn_map), timeout=1.0
                )
                if not ready:
                    # heartbeat sweep: EOF wakeups already cover every
                    # normal death, this is belt and braces
                    for worker_id, state in list(workers.items()):
                        if not state["process"].is_alive():
                            reap(worker_id)
                    continue
                for conn in ready:
                    worker_id = conn_map[conn]
                    state = workers.get(worker_id)
                    if state is None:
                        continue  # reaped earlier in this batch
                    try:
                        _sender, cell_index, shard_index, error, report = (
                            conn.recv()
                        )
                    except (EOFError, OSError):
                        reap(worker_id)
                        continue
                    state["unit"] = None
                    if error is not None:
                        raise RuntimeError(
                            f"sweep cell {pairs[cell_index][0].label} shard "
                            f"{shard_index} failed in its worker:\n{error}"
                        )
                    if shard_index not in shard_reports[cell_index]:
                        if journal is not None:
                            journal.record(cell_index, shard_index, report)
                        shard_reports[cell_index][shard_index] = report
                        outstanding -= 1
                        if len(shard_reports[cell_index]) == shards:
                            finish_cell(cell_index)
                    # else: defensive duplicate drop — identical bytes
                    # either way, recording once keeps merges exact
                    dispatch(worker_id)
        except BaseException:
            for state in workers.values():
                process = state["process"]
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for state in workers.values():
                state["conn"].close()
                state["process"].join()
            for process in finished:
                process.join()


def run_sweep(
    spec: SweepSpec,
    cache_dir: Optional[str] = None,
    progress=None,
    max_parallel_cells: int = 1,
    schedule: str = "static",
    journal_dir: Optional[str] = None,
    resume: bool = False,
    should_stop=None,
) -> SweepReport:
    """Convenience one-call grid sweep."""
    return SweepRunner(
        spec,
        cache_dir=cache_dir,
        max_parallel_cells=max_parallel_cells,
        schedule=schedule,
        journal_dir=journal_dir,
        resume=resume,
    ).run(progress=progress, should_stop=should_stop)


__all__ = [
    "SweepCell",
    "SweepCellResult",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "cell_worker_budget",
    "derive_cell_seed",
    "run_sweep",
]
