"""Deterministic fault injection and shared retry policy.

Long campaigns die in boring ways — a full disk mid-checkpoint, a
worker OOM-killed mid-unit, a client socket reset mid-stream — and the
stack's answer everywhere is graceful degradation: a torn cache entry
is a miss, a failed journal publish is a skipped checkpoint, a dead
worker's unit is requeued. This module turns those claims into tested
invariants by letting a seed-driven :class:`FaultPlan` fire injected
failures at *named sites* instrumented at the real seams:

==================== ====================================================
site                 failure injected there
==================== ====================================================
trace_cache.read     ``OSError`` on a disk-tier read (degrades to miss)
trace_cache.write    ``OSError`` on entry publication (counted no-persist)
trace_cache.torn     the published entry blob is truncated (torn entry)
trace_cache.gc       ``OSError`` during the size-bounded GC pass
journal.publish      ``OSError`` publishing a shard checkpoint record
sweep.unit           the work-stealing worker dies (``os._exit``) mid-unit
sweep.spawn          ``OSError`` spawning a work-stealing worker process
service.event        ``OSError`` persisting a job's state-dir snapshot
server.send          the server drops the client connection mid-response
==================== ====================================================

Activation is env-driven (so forked and spawned workers inherit the
plan) or programmatic (tests):

- ``REPRO_FAULTS`` — comma-separated rules ``site=rate[:count]``; e.g.
  ``trace_cache.torn=0.5,journal.publish=0.25,sweep.unit=1:1``.
- ``REPRO_FAULT_SEED`` — the plan seed (default 0). Firing decisions
  are a pure function of ``(seed, site, per-site counter)``, so a
  fixed seed replays the identical fault pattern.
- ``REPRO_FAULT_DIR`` — optional token directory for ``:count``-limited
  rules. Tokens are claimed with ``O_CREAT|O_EXCL``, so "kill exactly
  one worker" holds across a whole process tree, not per process.

Without a plan every hook is a cheap no-op, so instrumented hot paths
cost one module-level check in production.

:class:`RetryPolicy` is the shared capped-exponential-backoff policy
(deterministic seed-derived jitter) used by the service client's
reconnect-and-resume, the trace cache's disk publication, and the
sweep scheduler's worker respawn.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

_MASK64 = (1 << 64) - 1

#: every site the stack instruments, for spec validation
KNOWN_SITES = (
    "trace_cache.read",
    "trace_cache.write",
    "trace_cache.torn",
    "trace_cache.gc",
    "journal.publish",
    "sweep.unit",
    "sweep.spawn",
    "service.event",
    "server.send",
)

ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"
ENV_TOKEN_DIR = "REPRO_FAULT_DIR"


def _mix(*parts: int) -> int:
    """splitmix64 finalizer folded over the parts — the same stable
    mixing :func:`repro.core.campaign.derive_shard_seed` uses, so fault
    decisions are reproducible across runs, platforms and processes."""
    x = 0x9E3779B97F4A7C15
    for part in parts:
        x = (x ^ (part & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
    return x & _MASK64


def _site_index(site: str) -> int:
    digest = hashlib.sha1(site.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class InjectedFault(OSError):
    """An injected I/O failure (defaults to ``ENOSPC`` semantics)."""

    def __init__(self, site: str, code: int = errno.ENOSPC) -> None:
        super().__init__(code, f"injected fault at {site}")
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One site's injection rule: fire with ``rate`` probability per
    hit, at most ``count`` times (None = unbounded)."""

    site: str
    rate: float = 1.0
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"known sites: {', '.join(KNOWN_SITES)}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(
                f"fault rate for {self.site} must be in (0, 1], "
                f"got {self.rate}"
            )
        if self.count is not None and self.count < 1:
            raise ValueError("fault count must be >= 1 (or None)")


class FaultPlan:
    """A deterministic schedule of injected faults.

    ``should_fire(site)`` consumes one decision from the site's stream:
    hit ``n`` fires iff ``mix(seed, site, n)`` maps below ``rate`` —
    a pure function of the plan seed, so two runs with the same seed
    and the same per-process call sequence inject identical faults.
    ``count``-limited rules additionally claim a token: from
    ``token_dir`` atomically (process-tree-wide budget) or from a local
    counter (per-process budget) when no directory is set.
    """

    def __init__(
        self,
        rules: Dict[str, FaultRule] | Tuple[FaultRule, ...] | list,
        seed: int = 0,
        token_dir: Optional[str] = None,
    ) -> None:
        if not isinstance(rules, dict):
            rules = {rule.site: rule for rule in rules}
        self.rules: Dict[str, FaultRule] = dict(rules)
        self.seed = seed
        self.token_dir = token_dir
        self._counters: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        if token_dir is not None:
            os.makedirs(token_dir, exist_ok=True)

    # -- construction -------------------------------------------------

    @classmethod
    def parse(
        cls, spec: str, seed: int = 0, token_dir: Optional[str] = None
    ) -> "FaultPlan":
        """Parse a ``site=rate[:count],...`` spec (the ``REPRO_FAULTS``
        grammar)."""
        rules = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            site, _, value = chunk.partition("=")
            if not value:
                raise ValueError(
                    f"bad fault rule {chunk!r}: expected site=rate[:count]"
                )
            rate_text, _, count_text = value.partition(":")
            try:
                rate = float(rate_text)
                count = int(count_text) if count_text else None
            except ValueError:
                raise ValueError(
                    f"bad fault rule {chunk!r}: expected site=rate[:count]"
                ) from None
            rules.append(FaultRule(site.strip(), rate, count))
        return cls(rules, seed=seed, token_dir=token_dir)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        env = os.environ if environ is None else environ
        spec = env.get(ENV_SPEC)
        if not spec:
            return None
        return cls.parse(
            spec,
            seed=int(env.get(ENV_SEED, "0")),
            token_dir=env.get(ENV_TOKEN_DIR) or None,
        )

    def to_spec(self) -> str:
        """The ``REPRO_FAULTS`` string reproducing this plan's rules."""
        parts = []
        for rule in self.rules.values():
            count = f":{rule.count}" if rule.count is not None else ""
            parts.append(f"{rule.site}={rule.rate:g}{count}")
        return ",".join(parts)

    # -- firing -------------------------------------------------------

    def fired(self, site: str) -> int:
        """Faults this plan fired at ``site`` in this process."""
        return self._fired.get(site, 0)

    def should_fire(self, site: str) -> bool:
        rule = self.rules.get(site)
        if rule is None:
            return False
        hit = self._counters.get(site, 0)
        self._counters[site] = hit + 1
        threshold = int(rule.rate * (_MASK64 + 1))
        if _mix(self.seed, _site_index(site), hit) >= threshold:
            return False
        if rule.count is not None and not self._claim(rule):
            return False
        self._fired[site] = self._fired.get(site, 0) + 1
        return True

    def _claim(self, rule: FaultRule) -> bool:
        """Claim one of the rule's ``count`` firing tokens."""
        if self.token_dir is None:
            if self._fired.get(rule.site, 0) >= rule.count:
                return False
            return True
        safe = rule.site.replace("/", "_")
        for index in range(rule.count):
            path = os.path.join(self.token_dir, f"{safe}-{index}.token")
            try:
                descriptor = os.open(
                    path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            except OSError:
                return False
            with os.fdopen(descriptor, "w") as handle:
                handle.write(f"pid={os.getpid()}\n")
            return True
        return False


# -- process-global plan -----------------------------------------------

_installed: Optional[FaultPlan] = None
#: (raw spec env value, plan) cache so hot paths pay one dict lookup
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or with ``None`` clear) the process-wide plan; takes
    precedence over the environment."""
    global _installed
    _installed = plan


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager installing ``plan`` for the block (tests)."""
    previous = _installed
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else the (cached) environment plan."""
    if _installed is not None:
        return _installed
    global _env_cache
    spec = os.environ.get(ENV_SPEC)
    cached_spec, cached_plan = _env_cache
    if spec != cached_spec:
        cached_plan = FaultPlan.from_env() if spec else None
        _env_cache = (spec, cached_plan)
    return cached_plan


def should_fire(site: str) -> bool:
    """Does the active plan (if any) fire at ``site`` for this hit?"""
    plan = active_plan()
    return plan is not None and plan.should_fire(site)


def inject_oserror(site: str) -> None:
    """Raise :class:`InjectedFault` when the plan fires at ``site``."""
    if should_fire(site):
        raise InjectedFault(site)


def corrupt(site: str, blob: bytes) -> bytes:
    """Return ``blob`` truncated (a torn write) when ``site`` fires."""
    if should_fire(site) and len(blob) > 1:
        return blob[: max(1, len(blob) // 2)]
    return blob


def maybe_exit(site: str, code: int = 137) -> None:
    """Kill the current process (no cleanup — simulating an OOM kill
    or power loss) when the plan fires at ``site``."""
    if should_fire(site):
        os._exit(code)


# -- retry policy ------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seed-derived jitter.

    ``delay(n)`` for retry ``n`` (0-based) is ``base_delay * 2**n``
    capped at ``max_delay``, shrunk by up to ``jitter`` of itself using
    the same splitmix64 stream the fault plans draw from — so two runs
    with the same seed back off identically, and concurrent clients
    with different seeds don't stampede in lockstep.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    #: injectable clock for tests; production uses ``time.sleep``
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        raw = min(self.max_delay, self.base_delay * (2 ** attempt))
        fraction = _mix(self.seed, attempt) / (_MASK64 + 1)
        return raw * (1.0 - self.jitter * fraction)

    def call(self, fn: Callable[[], object], retry_on=(OSError,)):
        """Run ``fn``, retrying on ``retry_on`` up to ``attempts`` total
        tries with backoff between them; re-raises the last failure."""
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on:
                if attempt + 1 >= self.attempts:
                    raise
                self.sleep(self.delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover


__all__ = [
    "ENV_SEED",
    "ENV_SPEC",
    "ENV_TOKEN_DIR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "KNOWN_SITES",
    "RetryPolicy",
    "active_plan",
    "corrupt",
    "inject_oserror",
    "injected",
    "install_plan",
    "maybe_exit",
    "should_fire",
]
