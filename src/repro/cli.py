"""Command-line interface, mirroring the original tool's ``cli.py fuzz``.

Subcommands:

- ``fuzz``      run a fuzzing campaign against one target/contract;
- ``campaign``  run the same campaign sharded over N worker processes;
- ``sweep``     run a campaign grid over arch x contract x cpu;
- ``reproduce`` run a handwritten gadget from the gallery;
- ``trace``     print contract trace(s) of an assembly file;
- ``minimize``  fuzz until a violation, then postprocess it;
- ``replay``    re-run a counterexample corpus as a regression gate;
- ``serve``     serve the campaign job service over a local socket;
- ``list``      show available contracts, CPU presets, subsets, gadgets.

Examples::

    revizor fuzz -s AR+MEM+CB -c CT-SEQ --cpu skylake -n 200 -i 50
    revizor fuzz --arch aarch64 -s AR+MEM+CB -n 200 -i 50
    revizor campaign -s AR+MEM+CB -n 2000 --workers 8 --cache
    revizor sweep --arch x86_64,aarch64 --contract CT-SEQ,CT-COND \
        --cpu skylake,coffee-lake -n 100 --cache-dir /tmp/traces

``--arch`` selects the ISA backend (x86_64 default, aarch64); it is
plumbed through the campaign workers, so sharded campaigns fuzz the
selected backend too. All fuzzing subcommands accept the
contract-trace-cache knobs: ``--cache`` memoizes contract traces across
collections (pure-function results keyed by program/input/contract, see
:mod:`repro.core.trace_cache`), ``--cache-entries`` bounds the LRU,
``--cache-dir`` selects the persistent cross-process tier and
``--cache-max-bytes`` bounds its disk footprint (LRU garbage
collection). ``sweep --parallel-cells N`` executes up to N grid cells
concurrently without changing any deterministic cell report.

All fuzzing subcommands also accept ``--corpus-dir``: every confirmed
violation (and every minimized counterexample) is persisted into the
named directory as a self-contained replayable record
(:mod:`repro.corpus`); ``replay --corpus DIR`` re-detects every record
and exits nonzero on any regression (``--strict`` additionally rejects
unreadable records and empty corpora).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import api
from repro.arch import architecture_names, get_architecture
from repro.emulator.state import SandboxLayout
from repro.contracts import contract_names, get_contract
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.executor.modes import mode_names
from repro.gallery import GALLERY
from repro.uarch.config import preset_names


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _axis_list(text: str) -> List[str]:
    """Parse one comma-separated sweep axis, e.g. ``x86_64,aarch64``."""
    values = [value.strip() for value in text.split(",") if value.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return values


def add_engine_knob_options(parser: argparse.ArgumentParser) -> None:
    """The byte-identity-preserving engine knobs, shared by all five
    fuzzing subcommands (fuzz/campaign/sweep/minimize/replay)."""
    parser.add_argument("--no-battery-eval", action="store_true",
                        help="collect contract traces input by input "
                        "instead of battery-batched (repro.emulator."
                        "battery); traces, verdicts and reports are "
                        "byte-identical either way")
    parser.add_argument("--no-masked-fusion", action="store_true",
                        help="disable the masked-access fusion pass over "
                        "compiled programs (repro.analysis.fusion); traces, "
                        "verdicts and reports are byte-identical either way")
    parser.add_argument("--no-dead-flags", action="store_true",
                        help="disable the dead-flag elimination pass "
                        "(repro.analysis.dead_flags); traces, verdicts and "
                        "reports are byte-identical either way")
    parser.add_argument("--interpretive", action="store_true",
                        help="run the interpretive emulator instead of the "
                        "compile-once IR; traces, verdicts and reports are "
                        "byte-identical either way")


def add_engine_options(
    parser: argparse.ArgumentParser,
    axes: bool = False,
    budget_default: int = 200,
) -> None:
    """The one declaration of every shared engine flag.

    fuzz/campaign/minimize use the scalar form; sweep passes
    ``axes=True`` for comma-separated ``--arch/--contract/--cpu`` axis
    lists (and its historical ``-n`` default). tools/check_docs.py
    gates that every fuzzing subcommand exposes exactly this flag set
    and that none of these flags is declared anywhere else.
    """
    if axes:
        parser.add_argument(
            "--arch", type=_axis_list, default=["x86_64"],
            help="comma-separated ISA backends, e.g. x86_64,aarch64",
        )
        parser.add_argument(
            "--contract", type=_axis_list, default=["CT-SEQ"],
            help="comma-separated contracts, e.g. CT-SEQ,CT-COND",
        )
        parser.add_argument(
            "--cpu", type=_axis_list, default=["skylake"],
            help="comma-separated CPU presets, e.g. skylake,coffee-lake",
        )
    else:
        parser.add_argument("--arch", default="x86_64",
                            choices=architecture_names(),
                            help="ISA backend under test")
        parser.add_argument("-c", "--contract", default="CT-SEQ",
                            help="contract name, e.g. CT-SEQ")
        parser.add_argument("--cpu", default="skylake",
                            help="CPU preset under test")
    parser.add_argument("-s", "--subsets", default="AR+MEM+CB",
                        help="instruction subsets, e.g. AR+MEM+CB")
    parser.add_argument("-m", "--mode", default="P+P",
                        help="executor mode (P+P, F+R, E+R, P+P+A, ...)")
    parser.add_argument("-n", "--num-test-cases", type=int,
                        default=budget_default,
                        help="test-case budget"
                        + (" per grid cell" if axes else ""))
    parser.add_argument("-i", "--inputs", type=int, default=50,
                        help="inputs per test case")
    parser.add_argument("-e", "--entropy", type=int, default=2,
                        help="PRNG entropy bits")
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock budget in seconds"
                        + (" per shard" if axes else ""))
    parser.add_argument("--analyzer", default="subset",
                        choices=("subset", "strict"))
    parser.add_argument("--pages", type=int, default=1,
                        help="sandbox pages used by generated code")
    parser.add_argument("--prescreen", action="store_true",
                        help="skip test cases the static leak pre-screen "
                        "proves unable to violate (repro.analysis.prescreen)")
    parser.add_argument("--prescreen-safety-rate", type=int, default=20,
                        metavar="N",
                        help="still measure every Nth pre-screened case; a "
                        "violation on one of them fails the run (soundness "
                        "check; 0 disables sampling)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base PRNG seed"
                        + (" the per-cell seeds derive from" if axes else ""))
    add_engine_knob_options(parser)
    parser.add_argument("--cache", action="store_true",
                        help="memoize contract traces across collections")
    parser.add_argument("--cache-entries", type=_positive_int, default=65536,
                        help="LRU capacity of the contract-trace cache")
    parser.add_argument("--cache-dir", default=None,
                        help="directory of the persistent cross-process "
                        "trace cache (implies --cache); shared by campaign "
                        "shard workers, sweep cells and later runs")
    parser.add_argument("--cache-max-bytes", type=_positive_int, default=None,
                        help="disk-footprint bound of the persistent trace "
                        "cache; least-recently-used entries are garbage-"
                        "collected once the bound is exceeded")
    parser.add_argument("--cache-compress", action="store_true",
                        help="zlib-compress persistent trace-cache entries "
                        "(reads remain transparent to uncompressed legacy "
                        "entries; compressed sizes feed the GC accounting)")
    parser.add_argument("--corpus-dir", default=None,
                        help="persist every confirmed violation (and every "
                        "minimized counterexample) into this directory as a "
                        "replayable record (repro.corpus); replay it with "
                        "`replay --corpus DIR`")


def _add_journal_options(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume flags shared by campaign and sweep."""
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="checkpoint every completed shard into this journal "
        "directory (atomic publish; see docs/campaigns-and-sweeps.md); "
        "a killed run can be finished later with --resume DIR",
    )
    parser.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume from an existing journal: replay its completed "
        "shards and dispatch only the missing ones; the journal's "
        "recorded spec digest must match this invocation's grid/budget "
        "(a mismatch is a hard error)",
    )


def _engine_options(
    args: argparse.Namespace, axes: bool = False
) -> api.EngineOptions:
    """Parsed namespace -> options bag, with CLI-grade error rendering."""
    try:
        options = api.EngineOptions.from_args(args, axes=axes)
        options.to_fuzzer_config()  # validate eagerly
    except ValueError as error:
        raise SystemExit(str(error))
    return options


def _journal_selection(args: argparse.Namespace):
    """Resolve --journal/--resume into (journal_dir, resume)."""
    if args.journal and args.resume:
        raise SystemExit(
            "pass either --journal DIR (start checkpointing) or "
            "--resume DIR (continue from checkpoints), not both"
        )
    if args.resume:
        return args.resume, True
    return args.journal, False


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run one fuzzing campaign; exit 1 when a violation is found."""
    report = api.run_fuzz(_engine_options(args))
    print(report.summary())
    if report.found:
        print()
        print(report.violation.describe())
        return 1  # a violation is a nonzero exit, like grep finding a match
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run one fuzzing budget sharded across worker processes.

    The budget (``-n``) is split into deterministic shards (per-shard
    seeds derived from ``--seed``), fanned out over ``--workers``
    processes, and the per-shard reports are merged: coverage is
    unioned, counters are summed, and the first violation wins with a
    stable tie-break. For budget-bound campaigns (no ``--timeout``),
    keeping ``--shards`` fixed while varying ``--workers`` reproduces
    the identical merged report at any level of parallelism; a
    ``--timeout`` bounds each shard's wall clock instead and gives up
    that invariance. ``--journal DIR`` checkpoints completed shards and
    ``--resume DIR`` finishes a killed run from its checkpoints. Exits
    1 when a violation is found, like ``fuzz``.
    """
    journal_dir, resume = _journal_selection(args)
    try:
        report = api.run_campaign(
            _engine_options(args),
            workers=args.workers,
            shards=args.shards,
            mode="first-violation" if args.first_violation else "full",
            journal_dir=journal_dir,
            resume=resume,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print(report.summary())
    for index, shard in enumerate(report.shard_reports):
        print(f"  shard {index}: {shard.summary()}")
    if journal_dir is not None:
        print(f"report digest: {report.report_digest()}")
    if report.found:
        print()
        print(report.violation.describe())
        return 1
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a campaign grid over ``arch x contract x cpu``.

    Each grid cell is one sharded campaign (see ``campaign``) with a
    deterministic cell seed derived from ``--seed`` and the cell's
    (arch, contract) coordinates — cells along the cpu axis replay the
    identical test battery, so with ``--cache-dir`` they share contract
    traces through the persistent cache. ``--schedule work-stealing``
    drains the grid as one shared queue of shard-sized units (byte-
    identical reports, better wall clock on heterogeneous grids) and is
    what ``--journal``/``--resume`` checkpointing requires. Prints the
    per-arch violation matrix; ``--json`` additionally writes the full
    report. Exits 1 when any cell surfaced a violation, like ``fuzz``.
    """
    options = _engine_options(args, axes=True)
    journal_dir, resume = _journal_selection(args)
    cells = len(args.arch) * len(args.contract) * len(args.cpu)
    placement = (
        f"work-stealing pool of {max(args.workers, args.parallel_cells)}"
        if args.schedule == "work-stealing"
        else f"up to {args.parallel_cells} cell(s) at a time, "
        f"{args.workers} worker(s) per cell"
    )
    print(f"sweeping {cells} cells "
          f"({len(args.arch)} arch x {len(args.contract)} contract x "
          f"{len(args.cpu)} cpu), {placement}")

    def progress(cell, campaign):
        print(f"  {cell.label}: {campaign.merged.summary()}")

    try:
        report = api.run_sweep(
            options,
            arches=args.arch,
            contracts=args.contract,
            cpus=args.cpu,
            workers=args.workers,
            shards=args.shards,
            mode="first-violation" if args.first_violation else "full",
            total_budget=args.total_budget,
            parallel_cells=args.parallel_cells,
            schedule=args.schedule,
            journal_dir=journal_dir,
            resume=resume,
            progress=progress,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print()
    print(report.to_markdown())
    if journal_dir is not None:
        print(f"report digest: {report.report_digest()}")
    if args.json:
        import json as _json

        with open(args.json, "w") as handle:
            _json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nfull report written to {args.json}")
    return 1 if report.violations_found else 0


def run_minimize(args: argparse.Namespace):
    """Fuzz until a violation, then run the 3-stage postprocessor.

    Returns ``(fuzzing report, MinimizationResult or None)`` so corpus
    persistence and tests can consume the minimized counterexample as
    data; :func:`cmd_minimize` renders the same pair for the terminal.
    Thin wrapper over :func:`repro.api.run_minimize`, kept so existing
    importers keep working with a parsed namespace.
    """
    return api.run_minimize(
        _engine_options(args), advise_fences=args.advise_fences
    )


def cmd_minimize(args: argparse.Namespace) -> int:
    """Fuzz until a violation, then minimize and print it."""
    report, result = run_minimize(args)
    print(report.summary())
    if result is None:
        return 0
    print(f"\nminimized ({result.original_instruction_count} -> "
          f"{result.instruction_count} instructions, "
          f"{result.fences_inserted} fences):")
    print(result.text)
    return 1


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-run a counterexample corpus as a deterministic regression gate.

    Exit 0 when every replayable record PASSed; exit 1 on any FAIL or
    CHANGED (a detection-power or determinism regression), and — with
    ``--strict`` — also on any SKIP (unreadable or foreign-version
    record) or an empty corpus.
    """
    def progress(result):
        line = f"  {result.verdict:7s} {result.name}"
        if result.entry.record is not None:
            record = result.entry.record
            line += (f"  [{record.arch} {record.contract} {record.cpu}] "
                     f"{result.inputs} inputs, {result.seconds:.2f}s")
        if result.detail:
            line += f"\n          {result.detail}"
        print(line)

    print(f"replaying corpus {args.corpus} ...")
    report = api.run_replay(
        args.corpus,
        arch=args.arch,
        battery_eval=not args.no_battery_eval,
        masked_fusion=not args.no_masked_fusion,
        dead_flags=not args.no_dead_flags,
        compile_programs=not args.interpretive,
        progress=progress,
    )
    print(report.summary())
    if args.json:
        import json as _json

        with open(args.json, "w") as handle:
            _json.dump({"corpus_replay": report.to_json()}, handle,
                       indent=2, sort_keys=True)
            handle.write("\n")
        print(f"corpus-replay report written to {args.json}")
    if args.strict:
        return 0 if report.strict_ok() else 1
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the campaign service over a local socket.

    Campaigns become requests instead of shell sessions: clients submit
    job specs over a line-JSON protocol (docs/service.md), poll status,
    and stream incremental violation records as cells complete. Port 0
    (the default) picks an ephemeral port, printed on startup.
    """
    from repro.service import CampaignService, ServiceServer

    service = CampaignService(
        max_parallel_jobs=args.jobs,
        max_queued_jobs=args.max_queued,
        state_dir=args.state_dir,
    )
    server = ServiceServer(
        service, host=args.host, port=args.port,
        heartbeat_s=args.heartbeat if args.heartbeat > 0 else None,
    )
    host, port = server.address
    print(f"campaign service listening on {host}:{port} "
          f"({args.jobs} parallel job(s); line-JSON protocol, "
          "see docs/service.md; Ctrl-C to stop)", flush=True)
    if service.recovered_jobs:
        print(f"recovered {len(service.recovered_jobs)} job(s) from "
              f"{args.state_dir}: {', '.join(service.recovered_jobs)}",
              flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        report = server.close()
        if report["running_jobs"]:
            print("still running at shutdown: "
                  + ", ".join(report["running_jobs"])
                  + (" (state saved for --state-dir recovery)"
                     if args.state_dir else ""))
        service.shutdown(wait=False)
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run one handwritten gallery gadget through the detection pipeline."""
    try:
        entry = GALLERY[args.gadget]
    except KeyError:
        print(f"unknown gadget {args.gadget!r}; see `revizor list`",
              file=sys.stderr)
        return 2
    config = FuzzerConfig(
        arch=entry.arch,
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
        seed=11,
    )
    pipeline = TestingPipeline(config)
    generator = InputGenerator(seed=args.seed, entropy_bits=entry.entropy_bits,
                               layout=pipeline.layout,
                               registers=pipeline.arch.default_register_pool,
                               flag_bits=pipeline.arch.registers.flag_bits)
    print(f"{entry.name}: {entry.description}\n")
    print(pipeline.arch.render_program(entry.program(), numbered=True))
    count = 4
    while count <= args.max_inputs:
        inputs = generator.generate(count)
        candidate = pipeline.check_violation(entry.program(), inputs,
                                             confirm=True)
        if candidate is not None:
            print(f"\nviolation of {entry.contract} on {entry.cpu_preset} "
                  f"with {count} inputs:")
            print(candidate)
            return 1
        count *= 2
    print(f"\nno violation within {args.max_inputs} inputs "
          "(rare gadget or unlucky seed; retry with --seed)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print contract traces of an assembly file for a few random inputs."""
    arch = get_architecture(args.arch)
    with open(args.file) as handle:
        program = arch.parse_program(handle.read())
    contract = get_contract(args.contract)
    layout = SandboxLayout()
    generator = InputGenerator(seed=args.seed, entropy_bits=args.entropy,
                               layout=layout,
                               registers=arch.default_register_pool,
                               flag_bits=arch.registers.flag_bits)
    print(arch.render_program(program, numbered=True))
    print()
    for index, input_data in enumerate(generator.generate(args.inputs)):
        trace = contract.collect_trace(program, input_data, layout, arch)
        print(f"input #{index} (seed={input_data.seed}): {trace}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """List architectures, contracts, CPU presets, subsets and gadgets."""
    print("architectures:  " + ", ".join(architecture_names()))
    print("contracts:      " + ", ".join(contract_names()))
    print("CPU presets:    " + ", ".join(preset_names()))
    print("ISA subsets:    " + ", ".join(
        get_architecture("x86_64").subset_names()))
    print("executor modes: " + ", ".join(mode_names()))
    print("gadgets:")
    for name, entry in GALLERY.items():
        print(f"  {name:24s} {entry.vulnerability}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="revizor",
        description="Model-based relational testing of (simulated) CPUs "
        "against speculation contracts",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz_parser = commands.add_parser("fuzz", help="run a fuzzing campaign")
    add_engine_options(fuzz_parser)
    fuzz_parser.set_defaults(handler=cmd_fuzz)

    campaign_parser = commands.add_parser(
        "campaign",
        help="run a fuzzing campaign sharded over worker processes",
    )
    add_engine_options(campaign_parser)
    campaign_parser.add_argument(
        "-w", "--workers", type=_positive_int, default=4,
        help="worker processes to fan shards out over",
    )
    campaign_parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="seed/budget shards (default: one per worker); fix this "
        "while varying --workers for identical merged results",
    )
    campaign_parser.add_argument(
        "--first-violation", action="store_true",
        help="cancel remaining shards once one finds a confirmed "
        "violation instead of draining the full budget",
    )
    _add_journal_options(campaign_parser)
    campaign_parser.set_defaults(handler=cmd_campaign)

    sweep_parser = commands.add_parser(
        "sweep",
        help="run a campaign grid over arch x contract x cpu",
    )
    add_engine_options(sweep_parser, axes=True, budget_default=100)
    sweep_parser.add_argument(
        "--total-budget", type=_positive_int, default=None,
        help="grid-wide budget split over the cells (overrides -n)",
    )
    sweep_parser.add_argument(
        "-w", "--workers", type=_positive_int, default=1,
        help="worker processes per grid cell",
    )
    sweep_parser.add_argument(
        "--parallel-cells", type=_positive_int, default=1,
        help="grid cells to execute concurrently (cell reports are "
        "byte-identical for every value; shard workers per cell are "
        "scaled down so cells x workers never oversubscribes the host)",
    )
    sweep_parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="seed/budget shards per cell (default: one per worker)",
    )
    sweep_parser.add_argument(
        "--first-violation", action="store_true",
        help="cancel each cell's remaining shards at its first violation",
    )
    sweep_parser.add_argument(
        "--schedule", default="static",
        choices=("static", "work-stealing"),
        help="cell scheduler: 'static' fans whole cells out over "
        "--parallel-cells processes; 'work-stealing' drains all cells' "
        "shard-sized units from one shared queue, so workers finishing "
        "cheap cells steal pending units of expensive ones (reports "
        "are byte-identical either way)",
    )
    _add_journal_options(sweep_parser)
    sweep_parser.add_argument("--json", default=None, metavar="PATH",
                              help="write the full sweep report as JSON")
    sweep_parser.set_defaults(handler=cmd_sweep)

    minimize_parser = commands.add_parser(
        "minimize", help="fuzz until a violation, then minimize it"
    )
    add_engine_options(minimize_parser)
    minimize_parser.add_argument(
        "--advise-fences", action="store_true",
        help="probe fence positions in the order the static fence "
        "advisor suggests (repro.analysis.fence_advisor) instead of "
        "exhaustive reverse order",
    )
    minimize_parser.set_defaults(handler=cmd_minimize)

    replay_parser = commands.add_parser(
        "replay",
        help="re-run a counterexample corpus as a regression gate",
    )
    replay_parser.add_argument(
        "--corpus", required=True, metavar="DIR",
        help="corpus directory of replayable records (repro.corpus), "
        "e.g. the checked-in corpus/seed or a --corpus-dir output",
    )
    replay_parser.add_argument(
        "--strict", action="store_true",
        help="also exit nonzero on SKIPped (unreadable/foreign-version) "
        "records and on an empty corpus",
    )
    replay_parser.add_argument(
        "--arch", default=None, choices=architecture_names(),
        help="replay only the records targeting this ISA backend",
    )
    add_engine_knob_options(replay_parser)
    replay_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the corpus_replay report section as JSON "
        "(schema-checked by tools/check_bench_json.py)",
    )
    replay_parser.set_defaults(handler=cmd_replay)

    serve_parser = commands.add_parser(
        "serve",
        help="serve the campaign service over a local socket "
        "(line-JSON job protocol, see docs/service.md)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (loopback by default)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (0 picks an ephemeral port, "
        "printed on startup)",
    )
    serve_parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="jobs allowed to run concurrently; excess submissions "
        "queue as pending",
    )
    serve_parser.add_argument(
        "--max-queued", type=int, default=None,
        help="bound on pending jobs beyond the running ones; a full "
        "queue rejects submits with a retry_after hint (default: "
        "unbounded)",
    )
    serve_parser.add_argument(
        "--state-dir", default=None,
        help="directory persisting the job table (atomic snapshots); "
        "a restarted serve recovers submitted jobs and resumes "
        "interrupted journaled campaigns",
    )
    serve_parser.add_argument(
        "--heartbeat", type=float, default=15.0,
        help="keepalive cadence in seconds for idle results streams "
        "(0 disables heartbeats)",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    reproduce_parser = commands.add_parser(
        "reproduce", help="run a handwritten gadget from the gallery"
    )
    reproduce_parser.add_argument("gadget", help="gadget name (see `list`)")
    reproduce_parser.add_argument("--max-inputs", type=int, default=128)
    reproduce_parser.add_argument("--seed", type=int, default=42)
    reproduce_parser.set_defaults(handler=cmd_reproduce)

    trace_parser = commands.add_parser(
        "trace", help="print contract traces of an assembly file"
    )
    trace_parser.add_argument("file", help="assembly file (in the "
                              "--arch backend's syntax)")
    trace_parser.add_argument("--arch", default="x86_64",
                              choices=architecture_names(),
                              help="ISA backend the file targets")
    trace_parser.add_argument("-c", "--contract", default="CT-SEQ")
    trace_parser.add_argument("-i", "--inputs", type=int, default=3)
    trace_parser.add_argument("-e", "--entropy", type=int, default=2)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.set_defaults(handler=cmd_trace)

    list_parser = commands.add_parser("list", help="show available components")
    list_parser.set_defaults(handler=cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
