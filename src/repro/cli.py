"""Command-line interface, mirroring the original tool's ``cli.py fuzz``.

Subcommands:

- ``fuzz``      run a fuzzing campaign against one target/contract;
- ``campaign``  run the same campaign sharded over N worker processes;
- ``sweep``     run a campaign grid over arch x contract x cpu;
- ``reproduce`` run a handwritten gadget from the gallery;
- ``trace``     print contract trace(s) of an assembly file;
- ``minimize``  fuzz until a violation, then postprocess it;
- ``replay``    re-run a counterexample corpus as a regression gate;
- ``list``      show available contracts, CPU presets, subsets, gadgets.

Examples::

    revizor fuzz -s AR+MEM+CB -c CT-SEQ --cpu skylake -n 200 -i 50
    revizor fuzz --arch aarch64 -s AR+MEM+CB -n 200 -i 50
    revizor campaign -s AR+MEM+CB -n 2000 --workers 8 --cache
    revizor sweep --arch x86_64,aarch64 --contract CT-SEQ,CT-COND \
        --cpu skylake,coffee-lake -n 100 --cache-dir /tmp/traces

``--arch`` selects the ISA backend (x86_64 default, aarch64); it is
plumbed through the campaign workers, so sharded campaigns fuzz the
selected backend too. All fuzzing subcommands accept the
contract-trace-cache knobs: ``--cache`` memoizes contract traces across
collections (pure-function results keyed by program/input/contract, see
:mod:`repro.core.trace_cache`), ``--cache-entries`` bounds the LRU,
``--cache-dir`` selects the persistent cross-process tier and
``--cache-max-bytes`` bounds its disk footprint (LRU garbage
collection). ``sweep --parallel-cells N`` executes up to N grid cells
concurrently without changing any deterministic cell report.

All fuzzing subcommands also accept ``--corpus-dir``: every confirmed
violation (and every minimized counterexample) is persisted into the
named directory as a self-contained replayable record
(:mod:`repro.corpus`); ``replay --corpus DIR`` re-detects every record
and exits nonzero on any regression (``--strict`` additionally rejects
unreadable records and empty corpora).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.arch import architecture_names, get_architecture
from repro.emulator.state import SandboxLayout
from repro.contracts import contract_names, get_contract
from repro.core.campaign import CampaignRunner
from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.sweep import SweepRunner, SweepSpec
from repro.core.fuzzer import Fuzzer, TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.postprocessor import Postprocessor
from repro.executor.modes import mode_names
from repro.gallery import GALLERY
from repro.uarch.config import preset_names


def _build_config(args: argparse.Namespace) -> FuzzerConfig:
    if args.cache_max_bytes is not None and not args.cache_dir:
        raise SystemExit(
            "--cache-max-bytes bounds the persistent disk tier and "
            "requires --cache-dir"
        )
    if args.cache_compress and not args.cache_dir:
        raise SystemExit(
            "--cache-compress compresses the persistent disk tier and "
            "requires --cache-dir"
        )
    return FuzzerConfig(
        arch=args.arch,
        instruction_subsets=tuple(args.subsets.split("+")),
        contract_name=args.contract,
        cpu_preset=args.cpu,
        executor_mode=args.mode,
        num_test_cases=args.num_test_cases,
        inputs_per_test_case=args.inputs,
        entropy_bits=args.entropy,
        timeout_seconds=args.timeout,
        analyzer_mode=args.analyzer,
        prescreen=args.prescreen,
        prescreen_safety_rate=args.prescreen_safety_rate,
        seed=args.seed,
        generator=GeneratorConfig(sandbox_pages=args.pages),
        battery_eval=not args.no_battery_eval,
        optimize_masked_access=not args.no_masked_fusion,
        contract_trace_cache=args.cache,
        trace_cache_entries=args.cache_entries,
        trace_cache_dir=args.cache_dir,
        trace_cache_max_bytes=args.cache_max_bytes,
        trace_cache_compress=args.cache_compress,
        corpus_dir=args.corpus_dir,
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_target_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", default="x86_64",
                        choices=architecture_names(),
                        help="ISA backend under test")
    parser.add_argument("-s", "--subsets", default="AR+MEM+CB",
                        help="instruction subsets, e.g. AR+MEM+CB")
    parser.add_argument("-c", "--contract", default="CT-SEQ",
                        help="contract name, e.g. CT-SEQ")
    parser.add_argument("--cpu", default="skylake",
                        help="CPU preset under test")
    parser.add_argument("-m", "--mode", default="P+P",
                        help="executor mode (P+P, F+R, E+R, P+P+A, ...)")
    parser.add_argument("-n", "--num-test-cases", type=int, default=200)
    parser.add_argument("-i", "--inputs", type=int, default=50,
                        help="inputs per test case")
    parser.add_argument("-e", "--entropy", type=int, default=2,
                        help="PRNG entropy bits")
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock budget in seconds")
    parser.add_argument("--analyzer", default="subset",
                        choices=("subset", "strict"))
    parser.add_argument("--pages", type=int, default=1,
                        help="sandbox pages used by generated code")
    parser.add_argument("--prescreen", action="store_true",
                        help="skip test cases the static leak pre-screen "
                        "proves unable to violate (repro.analysis.prescreen)")
    parser.add_argument("--prescreen-safety-rate", type=int, default=20,
                        metavar="N",
                        help="still measure every Nth pre-screened case; a "
                        "violation on one of them fails the run (soundness "
                        "check; 0 disables sampling)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-battery-eval", action="store_true",
                        help="collect contract traces input by input "
                        "instead of battery-batched (repro.emulator."
                        "battery); traces and reports are byte-identical "
                        "either way")
    parser.add_argument("--no-masked-fusion", action="store_true",
                        help="disable the masked-access fusion pass over "
                        "compiled programs (repro.analysis.fusion); traces "
                        "and reports are byte-identical either way")
    parser.add_argument("--cache", action="store_true",
                        help="memoize contract traces across collections")
    parser.add_argument("--cache-entries", type=_positive_int, default=65536,
                        help="LRU capacity of the contract-trace cache")
    parser.add_argument("--cache-dir", default=None,
                        help="directory of the persistent cross-process "
                        "trace cache (implies --cache); shared by campaign "
                        "shard workers, sweep cells and later runs")
    parser.add_argument("--cache-max-bytes", type=_positive_int, default=None,
                        help="disk-footprint bound of the persistent trace "
                        "cache; least-recently-used entries are garbage-"
                        "collected once the bound is exceeded")
    parser.add_argument("--cache-compress", action="store_true",
                        help="zlib-compress persistent trace-cache entries "
                        "(reads remain transparent to uncompressed legacy "
                        "entries; compressed sizes feed the GC accounting)")
    parser.add_argument("--corpus-dir", default=None,
                        help="persist every confirmed violation (and every "
                        "minimized counterexample) into this directory as a "
                        "replayable record (repro.corpus); replay it with "
                        "`replay --corpus DIR`")


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run one fuzzing campaign; exit 1 when a violation is found."""
    fuzzer = Fuzzer(_build_config(args))
    report = fuzzer.run()
    print(report.summary())
    if report.found:
        print()
        print(report.violation.describe())
        return 1  # a violation is a nonzero exit, like grep finding a match
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run one fuzzing budget sharded across worker processes.

    The budget (``-n``) is split into deterministic shards (per-shard
    seeds derived from ``--seed``), fanned out over ``--workers``
    processes, and the per-shard reports are merged: coverage is
    unioned, counters are summed, and the first violation wins with a
    stable tie-break. For budget-bound campaigns (no ``--timeout``),
    keeping ``--shards`` fixed while varying ``--workers`` reproduces
    the identical merged report at any level of parallelism; a
    ``--timeout`` bounds each shard's wall clock instead and gives up
    that invariance. Exits 1 when a violation is found, like ``fuzz``.
    """
    runner = CampaignRunner(
        _build_config(args),
        workers=args.workers,
        shards=args.shards,
        mode="first-violation" if args.first_violation else "full",
    )
    report = runner.run()
    print(report.summary())
    for index, shard in enumerate(report.shard_reports):
        print(f"  shard {index}: {shard.summary()}")
    if report.found:
        print()
        print(report.violation.describe())
        return 1
    return 0


def _axis_list(text: str) -> List[str]:
    """Parse one comma-separated sweep axis, e.g. ``x86_64,aarch64``."""
    values = [value.strip() for value in text.split(",") if value.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return values


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a campaign grid over ``arch x contract x cpu``.

    Each grid cell is one sharded campaign (see ``campaign``) with a
    deterministic cell seed derived from ``--seed`` and the cell's
    (arch, contract) coordinates — cells along the cpu axis replay the
    identical test battery, so with ``--cache-dir`` they share contract
    traces through the persistent cache. Prints the per-arch violation
    matrix; ``--json`` additionally writes the full report. Exits 1
    when any cell surfaced a violation, like ``fuzz``.
    """
    spec = SweepSpec(
        arches=tuple(args.arch),
        contracts=tuple(args.contract),
        cpus=tuple(args.cpu),
        base_config=_build_config(
            replace_namespace(args, arch="x86_64", contract="CT-SEQ",
                              cpu="skylake")
        ),
        workers=args.workers,
        shards=args.shards,
        mode="first-violation" if args.first_violation else "full",
        total_budget=args.total_budget,
    )
    cells = spec.cells()
    print(f"sweeping {len(cells)} cells "
          f"({len(spec.arches)} arch x {len(spec.contracts)} contract x "
          f"{len(spec.cpus)} cpu), up to {args.parallel_cells} cell(s) "
          f"at a time, {args.workers} worker(s) per cell")

    def progress(cell, campaign):
        print(f"  {cell.label}: {campaign.merged.summary()}")

    report = SweepRunner(
        spec,
        cache_dir=args.cache_dir,
        max_parallel_cells=args.parallel_cells,
    ).run(progress=progress)
    print()
    print(report.to_markdown())
    if args.json:
        import json as _json

        with open(args.json, "w") as handle:
            _json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nfull report written to {args.json}")
    return 1 if report.violations_found else 0


def replace_namespace(args: argparse.Namespace, **overrides):
    """A shallow namespace copy with some attributes replaced (the sweep
    axes are lists; ``_build_config`` expects the scalar fields)."""
    clone = argparse.Namespace(**vars(args))
    for name, value in overrides.items():
        setattr(clone, name, value)
    return clone


def run_minimize(args: argparse.Namespace):
    """Fuzz until a violation, then run the 3-stage postprocessor.

    Returns ``(fuzzing report, MinimizationResult or None)`` so corpus
    persistence and tests can consume the minimized counterexample as
    data; :func:`cmd_minimize` renders the same pair for the terminal.
    """
    fuzzer = Fuzzer(_build_config(args))
    report = fuzzer.run()
    if not report.found:
        return report, None
    violation = report.violation
    result = Postprocessor(fuzzer.pipeline).minimize(
        violation.program,
        list(violation.input_sequence),
        advise_fences=args.advise_fences,
    )
    return report, result


def cmd_minimize(args: argparse.Namespace) -> int:
    """Fuzz until a violation, then minimize and print it."""
    report, result = run_minimize(args)
    print(report.summary())
    if result is None:
        return 0
    print(f"\nminimized ({result.original_instruction_count} -> "
          f"{result.instruction_count} instructions, "
          f"{result.fences_inserted} fences):")
    print(result.text)
    return 1


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-run a counterexample corpus as a deterministic regression gate.

    Exit 0 when every replayable record PASSed; exit 1 on any FAIL or
    CHANGED (a detection-power or determinism regression), and — with
    ``--strict`` — also on any SKIP (unreadable or foreign-version
    record) or an empty corpus.
    """
    from repro.corpus import CounterexampleCorpus

    overrides = {}
    if args.no_battery_eval:
        overrides["battery_eval"] = False
    if args.no_masked_fusion:
        overrides["optimize_masked_access"] = False
    if args.no_dead_flags:
        overrides["optimize_dead_flags"] = False
    if args.interpretive:
        overrides["compile_programs"] = False

    def progress(result):
        line = f"  {result.verdict:7s} {result.name}"
        if result.entry.record is not None:
            record = result.entry.record
            line += (f"  [{record.arch} {record.contract} {record.cpu}] "
                     f"{result.inputs} inputs, {result.seconds:.2f}s")
        if result.detail:
            line += f"\n          {result.detail}"
        print(line)

    print(f"replaying corpus {args.corpus} ...")
    report = CounterexampleCorpus(args.corpus).replay(
        config_overrides=overrides or None,
        arch=args.arch,
        progress=progress,
    )
    print(report.summary())
    if args.json:
        import json as _json

        with open(args.json, "w") as handle:
            _json.dump({"corpus_replay": report.to_json()}, handle,
                       indent=2, sort_keys=True)
            handle.write("\n")
        print(f"corpus-replay report written to {args.json}")
    if args.strict:
        return 0 if report.strict_ok() else 1
    return 0 if report.ok else 1


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run one handwritten gallery gadget through the detection pipeline."""
    try:
        entry = GALLERY[args.gadget]
    except KeyError:
        print(f"unknown gadget {args.gadget!r}; see `revizor list`",
              file=sys.stderr)
        return 2
    config = FuzzerConfig(
        arch=entry.arch,
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
        seed=11,
    )
    pipeline = TestingPipeline(config)
    generator = InputGenerator(seed=args.seed, entropy_bits=entry.entropy_bits,
                               layout=pipeline.layout,
                               registers=pipeline.arch.default_register_pool,
                               flag_bits=pipeline.arch.registers.flag_bits)
    print(f"{entry.name}: {entry.description}\n")
    print(pipeline.arch.render_program(entry.program(), numbered=True))
    count = 4
    while count <= args.max_inputs:
        inputs = generator.generate(count)
        candidate = pipeline.check_violation(entry.program(), inputs,
                                             confirm=True)
        if candidate is not None:
            print(f"\nviolation of {entry.contract} on {entry.cpu_preset} "
                  f"with {count} inputs:")
            print(candidate)
            return 1
        count *= 2
    print(f"\nno violation within {args.max_inputs} inputs "
          "(rare gadget or unlucky seed; retry with --seed)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print contract traces of an assembly file for a few random inputs."""
    arch = get_architecture(args.arch)
    with open(args.file) as handle:
        program = arch.parse_program(handle.read())
    contract = get_contract(args.contract)
    layout = SandboxLayout()
    generator = InputGenerator(seed=args.seed, entropy_bits=args.entropy,
                               layout=layout,
                               registers=arch.default_register_pool,
                               flag_bits=arch.registers.flag_bits)
    print(arch.render_program(program, numbered=True))
    print()
    for index, input_data in enumerate(generator.generate(args.inputs)):
        trace = contract.collect_trace(program, input_data, layout, arch)
        print(f"input #{index} (seed={input_data.seed}): {trace}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """List architectures, contracts, CPU presets, subsets and gadgets."""
    print("architectures:  " + ", ".join(architecture_names()))
    print("contracts:      " + ", ".join(contract_names()))
    print("CPU presets:    " + ", ".join(preset_names()))
    print("ISA subsets:    " + ", ".join(
        get_architecture("x86_64").subset_names()))
    print("executor modes: " + ", ".join(mode_names()))
    print("gadgets:")
    for name, entry in GALLERY.items():
        print(f"  {name:24s} {entry.vulnerability}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="revizor",
        description="Model-based relational testing of (simulated) CPUs "
        "against speculation contracts",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz_parser = commands.add_parser("fuzz", help="run a fuzzing campaign")
    _add_target_arguments(fuzz_parser)
    fuzz_parser.set_defaults(handler=cmd_fuzz)

    campaign_parser = commands.add_parser(
        "campaign",
        help="run a fuzzing campaign sharded over worker processes",
    )
    _add_target_arguments(campaign_parser)
    campaign_parser.add_argument(
        "-w", "--workers", type=_positive_int, default=4,
        help="worker processes to fan shards out over",
    )
    campaign_parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="seed/budget shards (default: one per worker); fix this "
        "while varying --workers for identical merged results",
    )
    campaign_parser.add_argument(
        "--first-violation", action="store_true",
        help="cancel remaining shards once one finds a confirmed "
        "violation instead of draining the full budget",
    )
    campaign_parser.set_defaults(handler=cmd_campaign)

    sweep_parser = commands.add_parser(
        "sweep",
        help="run a campaign grid over arch x contract x cpu",
    )
    sweep_parser.add_argument(
        "--arch", type=_axis_list, default=["x86_64"],
        help="comma-separated ISA backends, e.g. x86_64,aarch64",
    )
    sweep_parser.add_argument(
        "--contract", type=_axis_list, default=["CT-SEQ"],
        help="comma-separated contracts, e.g. CT-SEQ,CT-COND",
    )
    sweep_parser.add_argument(
        "--cpu", type=_axis_list, default=["skylake"],
        help="comma-separated CPU presets, e.g. skylake,coffee-lake",
    )
    sweep_parser.add_argument("-s", "--subsets", default="AR+MEM+CB",
                              help="instruction subsets, e.g. AR+MEM+CB")
    sweep_parser.add_argument("-m", "--mode", default="P+P",
                              help="executor mode (P+P, F+R, E+R, ...)")
    sweep_parser.add_argument("-n", "--num-test-cases", type=int, default=100,
                              help="test-case budget per grid cell")
    sweep_parser.add_argument(
        "--total-budget", type=_positive_int, default=None,
        help="grid-wide budget split over the cells (overrides -n)",
    )
    sweep_parser.add_argument("-i", "--inputs", type=int, default=50,
                              help="inputs per test case")
    sweep_parser.add_argument("-e", "--entropy", type=int, default=2,
                              help="PRNG entropy bits")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              help="wall-clock budget per shard in seconds")
    sweep_parser.add_argument("--analyzer", default="subset",
                              choices=("subset", "strict"))
    sweep_parser.add_argument("--pages", type=int, default=1,
                              help="sandbox pages used by generated code")
    sweep_parser.add_argument("--seed", type=int, default=0,
                              help="base seed the per-cell seeds derive from")
    sweep_parser.add_argument(
        "--prescreen", action="store_true",
        help="skip test cases the static leak pre-screen proves unable "
        "to violate, in every cell (repro.analysis.prescreen)",
    )
    sweep_parser.add_argument(
        "--prescreen-safety-rate", type=int, default=20, metavar="N",
        help="still measure every Nth pre-screened case per shard; a "
        "violation on one of them fails the run (0 disables sampling)",
    )
    sweep_parser.add_argument(
        "-w", "--workers", type=_positive_int, default=1,
        help="worker processes per grid cell",
    )
    sweep_parser.add_argument(
        "--parallel-cells", type=_positive_int, default=1,
        help="grid cells to execute concurrently (cell reports are "
        "byte-identical for every value; shard workers per cell are "
        "scaled down so cells x workers never oversubscribes the host)",
    )
    sweep_parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="seed/budget shards per cell (default: one per worker)",
    )
    sweep_parser.add_argument(
        "--first-violation", action="store_true",
        help="cancel each cell's remaining shards at its first violation",
    )
    sweep_parser.add_argument("--no-battery-eval", action="store_true",
                              help="collect contract traces input by input "
                              "instead of battery-batched, in every cell")
    sweep_parser.add_argument("--no-masked-fusion", action="store_true",
                              help="disable the masked-access fusion pass "
                              "over compiled programs, in every cell")
    sweep_parser.add_argument("--cache", action="store_true",
                              help="memoize contract traces in memory")
    sweep_parser.add_argument("--cache-entries", type=_positive_int,
                              default=65536,
                              help="LRU capacity of the trace cache")
    sweep_parser.add_argument(
        "--cache-dir", default=None,
        help="persistent trace cache shared by every cell and shard "
        "worker of the sweep (and by later runs)",
    )
    sweep_parser.add_argument(
        "--cache-max-bytes", type=_positive_int, default=None,
        help="disk-footprint bound of the persistent trace cache; "
        "least-recently-used entries are garbage-collected once the "
        "bound is exceeded",
    )
    sweep_parser.add_argument(
        "--cache-compress", action="store_true",
        help="zlib-compress persistent trace-cache entries (transparent "
        "to uncompressed legacy entries)",
    )
    sweep_parser.add_argument(
        "--corpus-dir", default=None,
        help="persist every cell's confirmed violations into this "
        "directory as replayable records (repro.corpus); concurrent "
        "cells and shard workers append safely (atomic publish)",
    )
    sweep_parser.add_argument("--json", default=None, metavar="PATH",
                              help="write the full sweep report as JSON")
    sweep_parser.set_defaults(handler=cmd_sweep)

    minimize_parser = commands.add_parser(
        "minimize", help="fuzz until a violation, then minimize it"
    )
    _add_target_arguments(minimize_parser)
    minimize_parser.add_argument(
        "--advise-fences", action="store_true",
        help="probe fence positions in the order the static fence "
        "advisor suggests (repro.analysis.fence_advisor) instead of "
        "exhaustive reverse order",
    )
    minimize_parser.set_defaults(handler=cmd_minimize)

    replay_parser = commands.add_parser(
        "replay",
        help="re-run a counterexample corpus as a regression gate",
    )
    replay_parser.add_argument(
        "--corpus", required=True, metavar="DIR",
        help="corpus directory of replayable records (repro.corpus), "
        "e.g. the checked-in corpus/seed or a --corpus-dir output",
    )
    replay_parser.add_argument(
        "--strict", action="store_true",
        help="also exit nonzero on SKIPped (unreadable/foreign-version) "
        "records and on an empty corpus",
    )
    replay_parser.add_argument(
        "--arch", default=None, choices=architecture_names(),
        help="replay only the records targeting this ISA backend",
    )
    replay_parser.add_argument(
        "--no-battery-eval", action="store_true",
        help="replay through the per-input engine instead of "
        "battery-batched; verdicts and digests are byte-identical",
    )
    replay_parser.add_argument(
        "--no-masked-fusion", action="store_true",
        help="replay with the masked-access fusion pass disabled; "
        "verdicts and digests are byte-identical",
    )
    replay_parser.add_argument(
        "--no-dead-flags", action="store_true",
        help="replay with the dead-flag elimination pass disabled; "
        "verdicts and digests are byte-identical",
    )
    replay_parser.add_argument(
        "--interpretive", action="store_true",
        help="replay through the interpretive emulator instead of the "
        "compile-once IR; verdicts and digests are byte-identical",
    )
    replay_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the corpus_replay report section as JSON "
        "(schema-checked by tools/check_bench_json.py)",
    )
    replay_parser.set_defaults(handler=cmd_replay)

    reproduce_parser = commands.add_parser(
        "reproduce", help="run a handwritten gadget from the gallery"
    )
    reproduce_parser.add_argument("gadget", help="gadget name (see `list`)")
    reproduce_parser.add_argument("--max-inputs", type=int, default=128)
    reproduce_parser.add_argument("--seed", type=int, default=42)
    reproduce_parser.set_defaults(handler=cmd_reproduce)

    trace_parser = commands.add_parser(
        "trace", help="print contract traces of an assembly file"
    )
    trace_parser.add_argument("file", help="assembly file (in the "
                              "--arch backend's syntax)")
    trace_parser.add_argument("--arch", default="x86_64",
                              choices=architecture_names(),
                              help="ISA backend the file targets")
    trace_parser.add_argument("-c", "--contract", default="CT-SEQ")
    trace_parser.add_argument("-i", "--inputs", type=int, default=3)
    trace_parser.add_argument("-e", "--entropy", type=int, default=2)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.set_defaults(handler=cmd_trace)

    list_parser = commands.add_parser("list", help="show available components")
    list_parser.set_defaults(handler=cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
