"""Stable programmatic facade over the fuzzing engines.

``repro.api`` is the one surface the CLI handlers, the campaign
service (:mod:`repro.service`) and external embedders share:

- :class:`EngineOptions` — a flat, JSON-friendly options bag covering
  the target (arch/contract/cpu), the budget knobs, the engine knobs
  whose settings are byte-identity-preserving (battery eval, IR
  passes, interpretive fallback), and the cache/corpus plumbing.
  ``to_fuzzer_config()`` is the single place an options bag becomes a
  :class:`~repro.core.config.FuzzerConfig`; ``from_args`` adapts a
  parsed argparse namespace (see :func:`repro.cli.add_engine_options`)
  and ``to_dict``/``from_dict`` round-trip through JSON for the
  service wire protocol.
- ``run_fuzz`` / ``run_campaign`` / ``run_sweep`` / ``run_minimize`` /
  ``run_replay`` — one call per subcommand, returning the engine's
  report objects (extending the earlier ``run_minimize`` precedent).

Validation errors raise :class:`ValueError` (including
:class:`~repro.core.journal.JournalMismatch` for checkpoint/spec
conflicts); the CLI maps them to clean ``SystemExit`` messages.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.campaign import (
    CampaignCancelled,
    CampaignReport,
    CampaignRunner,
)
from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.fuzzer import Fuzzer, FuzzingReport
from repro.core.journal import JournalMismatch
from repro.core.postprocessor import Postprocessor
from repro.core.sweep import SweepReport, SweepRunner, SweepSpec

__all__ = [
    "CampaignCancelled",
    "EngineOptions",
    "JournalMismatch",
    "run_campaign",
    "run_fuzz",
    "run_minimize",
    "run_replay",
    "run_sweep",
]


@dataclass
class EngineOptions:
    """Everything a fuzzing engine run is configured by, flat and
    JSON-serializable. Field defaults match the CLI defaults."""

    # target coordinates
    arch: str = "x86_64"
    subsets: str = "AR+MEM+CB"
    contract: str = "CT-SEQ"
    cpu: str = "skylake"
    executor_mode: str = "P+P"
    # budget
    num_test_cases: int = 200
    inputs_per_test_case: int = 50
    entropy_bits: int = 2
    timeout_seconds: Optional[float] = None
    # pipeline shape
    analyzer_mode: str = "subset"
    sandbox_pages: int = 1
    prescreen: bool = False
    prescreen_safety_rate: int = 20
    seed: int = 0
    # engine knobs — reports are byte-identical for every setting
    battery_eval: bool = True
    masked_fusion: bool = True
    dead_flags: bool = True
    compile_programs: bool = True
    # contract-trace cache / counterexample corpus plumbing
    cache: bool = False
    cache_entries: int = 65536
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    cache_compress: bool = False
    corpus_dir: Optional[str] = None

    def to_fuzzer_config(self) -> FuzzerConfig:
        """The single options-bag -> FuzzerConfig mapping."""
        if self.cache_max_bytes is not None and not self.cache_dir:
            raise ValueError(
                "--cache-max-bytes bounds the persistent disk tier and "
                "requires --cache-dir"
            )
        if self.cache_compress and not self.cache_dir:
            raise ValueError(
                "--cache-compress compresses the persistent disk tier and "
                "requires --cache-dir"
            )
        return FuzzerConfig(
            arch=self.arch,
            instruction_subsets=tuple(self.subsets.split("+")),
            contract_name=self.contract,
            cpu_preset=self.cpu,
            executor_mode=self.executor_mode,
            num_test_cases=self.num_test_cases,
            inputs_per_test_case=self.inputs_per_test_case,
            entropy_bits=self.entropy_bits,
            timeout_seconds=self.timeout_seconds,
            analyzer_mode=self.analyzer_mode,
            prescreen=self.prescreen,
            prescreen_safety_rate=self.prescreen_safety_rate,
            seed=self.seed,
            generator=GeneratorConfig(sandbox_pages=self.sandbox_pages),
            battery_eval=self.battery_eval,
            optimize_masked_access=self.masked_fusion,
            optimize_dead_flags=self.dead_flags,
            compile_programs=self.compile_programs,
            contract_trace_cache=self.cache,
            trace_cache_entries=self.cache_entries,
            trace_cache_dir=self.cache_dir,
            trace_cache_max_bytes=self.cache_max_bytes,
            trace_cache_compress=self.cache_compress,
            corpus_dir=self.corpus_dir,
        )

    @classmethod
    def from_args(cls, args: Any, axes: bool = False) -> "EngineOptions":
        """Adapt a namespace parsed by
        :func:`repro.cli.add_engine_options`.

        With ``axes=True`` (the sweep form) arch/contract/cpu are
        comma-separated axis lists on the namespace; the options bag
        keeps its scalar defaults and the caller passes the axes to
        :func:`run_sweep` directly.
        """
        options = cls(
            subsets=args.subsets,
            executor_mode=args.mode,
            num_test_cases=args.num_test_cases,
            inputs_per_test_case=args.inputs,
            entropy_bits=args.entropy,
            timeout_seconds=args.timeout,
            analyzer_mode=args.analyzer,
            sandbox_pages=args.pages,
            prescreen=args.prescreen,
            prescreen_safety_rate=args.prescreen_safety_rate,
            seed=args.seed,
            battery_eval=not args.no_battery_eval,
            masked_fusion=not args.no_masked_fusion,
            dead_flags=not args.no_dead_flags,
            compile_programs=not args.interpretive,
            cache=args.cache,
            cache_entries=args.cache_entries,
            cache_dir=args.cache_dir,
            cache_max_bytes=args.cache_max_bytes,
            cache_compress=args.cache_compress,
            corpus_dir=args.corpus_dir,
        )
        if not axes:
            options.arch = args.arch
            options.contract = args.contract
            options.cpu = args.cpu
        return options

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineOptions":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown EngineOptions field(s): {', '.join(unknown)}"
            )
        return cls(**dict(data))


def run_fuzz(
    options: EngineOptions,
    should_stop: Optional[Callable[[], bool]] = None,
) -> FuzzingReport:
    """One fuzzing campaign (the ``fuzz`` subcommand).

    ``should_stop`` is polled between measurement batches; when it
    fires the run stops early and the report comes back flagged
    ``cancelled`` (single-process fuzzing has no partial-shard hazard,
    so the partial report is returned rather than raised away).
    """
    return Fuzzer(options.to_fuzzer_config()).run(should_stop=should_stop)


def run_campaign(
    options: EngineOptions,
    workers: int = 4,
    shards: Optional[int] = None,
    mode: str = "full",
    journal_dir: Optional[str] = None,
    resume: bool = False,
    should_stop: Optional[Callable[[], bool]] = None,
) -> CampaignReport:
    """One sharded campaign (the ``campaign`` subcommand), optionally
    checkpointed to / resumed from an atomic journal. ``should_stop``
    is the cooperative cancel/deadline signal; when it fires mid-run
    the campaign raises :class:`CampaignCancelled` (journaled shard
    checkpoints survive for a later resume)."""
    return CampaignRunner(
        options.to_fuzzer_config(),
        workers=workers,
        shards=shards,
        mode=mode,
        journal_dir=journal_dir,
        resume=resume,
    ).run(should_stop=should_stop)


def run_sweep(
    options: EngineOptions,
    arches: Optional[Sequence[str]] = None,
    contracts: Optional[Sequence[str]] = None,
    cpus: Optional[Sequence[str]] = None,
    workers: int = 1,
    shards: Optional[int] = None,
    mode: str = "full",
    total_budget: Optional[int] = None,
    budget_overrides: Optional[
        Mapping[Tuple[str, str, str], int]
    ] = None,
    parallel_cells: int = 1,
    schedule: str = "static",
    journal_dir: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[..., None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> SweepReport:
    """One campaign grid (the ``sweep`` subcommand). Axes default to
    the options bag's scalar coordinates (a 1x1x1 grid).
    ``should_stop`` is the cooperative cancel/deadline signal; when it
    fires the sweep raises :class:`CampaignCancelled` (journaled unit
    checkpoints survive for a later resume)."""
    spec = SweepSpec(
        arches=tuple(arches) if arches else (options.arch,),
        contracts=tuple(contracts) if contracts else (options.contract,),
        cpus=tuple(cpus) if cpus else (options.cpu,),
        base_config=options.to_fuzzer_config(),
        workers=workers,
        shards=shards,
        mode=mode,
        total_budget=total_budget,
        budget_overrides=dict(budget_overrides or {}),
    )
    return SweepRunner(
        spec,
        cache_dir=options.cache_dir,
        max_parallel_cells=parallel_cells,
        schedule=schedule,
        journal_dir=journal_dir,
        resume=resume,
    ).run(progress=progress, should_stop=should_stop)


def run_minimize(options: EngineOptions, advise_fences: bool = False):
    """Fuzz until a violation, then run the 3-stage postprocessor.

    Returns ``(FuzzingReport, MinimizationResult or None)``.
    """
    fuzzer = Fuzzer(options.to_fuzzer_config())
    report = fuzzer.run()
    if not report.found:
        return report, None
    violation = report.violation
    result = Postprocessor(fuzzer.pipeline).minimize(
        violation.program,
        list(violation.input_sequence),
        advise_fences=advise_fences,
    )
    return report, result


def run_replay(
    corpus_dir: str,
    arch: Optional[str] = None,
    battery_eval: bool = True,
    masked_fusion: bool = True,
    dead_flags: bool = True,
    compile_programs: bool = True,
    progress: Optional[Callable[..., None]] = None,
):
    """Re-run a counterexample corpus (the ``replay`` subcommand);
    returns the corpus's replay report."""
    from repro.corpus import CounterexampleCorpus

    overrides: Dict[str, Any] = {}
    if not battery_eval:
        overrides["battery_eval"] = False
    if not masked_fusion:
        overrides["optimize_masked_access"] = False
    if not dead_flags:
        overrides["optimize_dead_flags"] = False
    if not compile_programs:
        overrides["compile_programs"] = False
    return CounterexampleCorpus(corpus_dir).replay(
        config_overrides=overrides or None,
        arch=arch,
        progress=progress,
    )
