"""x86-64 instruction semantics: architectural execution of one instruction.

:func:`execute` runs a single instruction against an
:class:`~repro.emulator.state.ArchState` and returns a
:class:`~repro.emulator.semantics.StepResult` describing the side
effects: memory accesses (for observation clauses and cache modelling),
branch outcomes (for execution clauses and predictors) and the next
program counter.

Flag semantics follow the Intel SDM for the implemented subset; flags the
SDM leaves undefined (e.g. after DIV) are given fixed deterministic values
so that the model and the simulated CPU always agree.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.isa.instruction import Instruction
from repro.isa.instruction_set import condition_of
from repro.emulator.errors import DivisionFault, InvalidProgram
from repro.emulator.semantics import (
    MASK64,
    BranchInfo,
    MemAccess,
    OperandContext,
    StepResult,
    mask as _mask,
    signed as _signed,
)
from repro.emulator.state import ArchState


def _parity(value: int) -> bool:
    """PF: set when the low byte has an even number of set bits."""
    return bin(value & 0xFF).count("1") % 2 == 0


# -- flag computation ---------------------------------------------------------


def _set_result_flags(state: ArchState, result: int, width: int) -> None:
    state.write_flag("ZF", result == 0)
    state.write_flag("SF", bool(result >> (width - 1) & 1))
    state.write_flag("PF", _parity(result))


def _set_add_flags(
    state: ArchState, a: int, b: int, carry_in: int, width: int
) -> int:
    full = a + b + carry_in
    result = full & _mask(width)
    state.write_flag("CF", full > _mask(width))
    state.write_flag("OF", bool((~(a ^ b) & (a ^ result)) >> (width - 1) & 1))
    state.write_flag("AF", bool((a ^ b ^ result) >> 4 & 1))
    _set_result_flags(state, result, width)
    return result


def _set_sub_flags(
    state: ArchState, a: int, b: int, borrow_in: int, width: int
) -> int:
    full = a - b - borrow_in
    result = full & _mask(width)
    state.write_flag("CF", full < 0)
    state.write_flag("OF", bool(((a ^ b) & (a ^ result)) >> (width - 1) & 1))
    state.write_flag("AF", bool((a ^ b ^ result) >> 4 & 1))
    _set_result_flags(state, result, width)
    return result


def _set_logic_flags(state: ArchState, result: int, width: int) -> None:
    state.write_flag("CF", False)
    state.write_flag("OF", False)
    state.write_flag("AF", False)
    _set_result_flags(state, result, width)


def evaluate_condition(code: str, state: ArchState) -> bool:
    """Evaluate a canonical x86 condition code against FLAGS."""
    cf = state.read_flag("CF")
    zf = state.read_flag("ZF")
    sf = state.read_flag("SF")
    of = state.read_flag("OF")
    pf = state.read_flag("PF")
    table = {
        "O": of,
        "NO": not of,
        "B": cf,
        "AE": not cf,
        "Z": zf,
        "NZ": not zf,
        "BE": cf or zf,
        "A": not (cf or zf),
        "S": sf,
        "NS": not sf,
        "P": pf,
        "NP": not pf,
        "L": sf != of,
        "GE": sf == of,
        "LE": zf or (sf != of),
        "G": (not zf) and (sf == of),
    }
    try:
        return table[code]
    except KeyError:
        raise InvalidProgram(f"unknown condition code: {code!r}") from None


# -- instruction groups -------------------------------------------------------

_BINARY_ARITH = {"ADD", "SUB", "ADC", "SBB", "CMP"}
_BINARY_LOGIC = {"AND", "OR", "XOR", "TEST"}


def _exec_binary(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    a = ctx.read(0)
    b = ctx.read(1) & _mask(width)
    if mnemonic == "ADD":
        result = _set_add_flags(state, a, b, 0, width)
    elif mnemonic == "ADC":
        carry = int(state.read_flag("CF"))
        result = _set_add_flags(state, a, b, carry, width)
    elif mnemonic == "SUB":
        result = _set_sub_flags(state, a, b, 0, width)
    elif mnemonic == "SBB":
        borrow = int(state.read_flag("CF"))
        result = _set_sub_flags(state, a, b, borrow, width)
    elif mnemonic == "CMP":
        _set_sub_flags(state, a, b, 0, width)
        return
    elif mnemonic == "AND" or mnemonic == "TEST":
        result = a & b
        _set_logic_flags(state, result, width)
        if mnemonic == "TEST":
            return
    elif mnemonic == "OR":
        result = a | b
        _set_logic_flags(state, result, width)
    elif mnemonic == "XOR":
        result = a ^ b
        _set_logic_flags(state, result, width)
    else:  # pragma: no cover - guarded by dispatch
        raise InvalidProgram(mnemonic)
    ctx.write(0, result)


def _exec_mov(ctx: OperandContext, state: ArchState) -> None:
    width = ctx.width(0)
    value = ctx.read(1) & _mask(width)
    ctx.write(0, value)


def _exec_extend(ctx: OperandContext, state: ArchState) -> None:
    src_width = ctx.width(1)
    value = ctx.read(1) & _mask(src_width)
    if ctx.instruction.mnemonic == "MOVSX":
        dst_width = ctx.width(0)
        value = _signed(value, src_width) & _mask(dst_width)
    ctx.write(0, value)


def _exec_unary(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    value = ctx.read(0)
    if mnemonic == "INC":
        carry = state.read_flag("CF")
        result = _set_add_flags(state, value, 1, 0, width)
        state.write_flag("CF", carry)  # INC preserves CF
    elif mnemonic == "DEC":
        carry = state.read_flag("CF")
        result = _set_sub_flags(state, value, 1, 0, width)
        state.write_flag("CF", carry)  # DEC preserves CF
    elif mnemonic == "NEG":
        result = _set_sub_flags(state, 0, value, 0, width)
        state.write_flag("CF", value != 0)
    elif mnemonic == "NOT":
        result = (~value) & _mask(width)
    else:  # pragma: no cover
        raise InvalidProgram(mnemonic)
    ctx.write(0, result)


def _exec_imul(ctx: OperandContext, state: ArchState) -> None:
    width = ctx.width(0)
    a = _signed(ctx.read(0), width)
    b = _signed(ctx.read(1) & _mask(width), width)
    product = a * b
    result = product & _mask(width)
    overflow = product != _signed(result, width)
    state.write_flag("CF", overflow)
    state.write_flag("OF", overflow)
    state.write_flag("AF", False)
    _set_result_flags(state, result, width)
    ctx.write(0, result)


def _exec_xchg(ctx: OperandContext, state: ArchState) -> None:
    a = ctx.read(0)
    b = ctx.read(1)
    ctx.write(0, b)
    ctx.write(1, a)


def _exec_lea(ctx: OperandContext, state: ArchState) -> None:
    ctx.write(0, ctx.read(1))


def _exec_cmov(ctx: OperandContext, state: ArchState, condition: str) -> None:
    width = ctx.width(0)
    # x86 always performs the source load, even when the move is suppressed.
    value = ctx.read(1) & _mask(width)
    if evaluate_condition(condition, state):
        ctx.write(0, value)
    elif width == 32:
        # 32-bit CMOV zero-extends the destination even when not moving.
        ctx.write(0, ctx.read(0) & _mask(32))


def _exec_setcc(ctx: OperandContext, state: ArchState, condition: str) -> None:
    ctx.write(0, 1 if evaluate_condition(condition, state) else 0)


def _exec_div(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    divisor = ctx.read(0) & _mask(width)
    if width == 64:
        high = state.read_register("RDX")
        low = state.read_register("RAX")
    else:
        high = state.read_register("EDX")
        low = state.read_register("EAX")
    dividend = (high << width) | low
    if mnemonic == "IDIV":
        dividend = _signed(dividend, 2 * width)
        divisor = _signed(divisor, width)
        if divisor == 0:
            raise DivisionFault("IDIV by zero")
        quotient = int(dividend / divisor)  # truncation toward zero
        remainder = dividend - quotient * divisor
        if not (-(1 << (width - 1)) <= quotient <= (1 << (width - 1)) - 1):
            raise DivisionFault("IDIV quotient overflow")
    else:
        if divisor == 0:
            raise DivisionFault("DIV by zero")
        quotient, remainder = divmod(dividend, divisor)
        if quotient > _mask(width):
            raise DivisionFault("DIV quotient overflow")
    quotient &= _mask(width)
    remainder &= _mask(width)
    if width == 64:
        state.write_register("RAX", quotient)
        state.write_register("RDX", remainder)
    else:
        state.write_register("EAX", quotient)
        state.write_register("EDX", remainder)
    # Flags after DIV/IDIV are architecturally undefined; we define them
    # deterministically so model and simulated CPU agree.
    state.write_flag("CF", False)
    state.write_flag("OF", False)
    state.write_flag("AF", False)
    _set_result_flags(state, quotient, width)


def execute(
    instruction: Instruction,
    state: ArchState,
    pc: int = 0,
    resolve_label: Optional[Callable[[str], int]] = None,
) -> StepResult:
    """Execute one instruction architecturally; return its side effects."""
    ctx = OperandContext(instruction, state, resolve_label)
    mnemonic = instruction.mnemonic
    category = instruction.category
    next_pc = pc + 1
    branch: Optional[BranchInfo] = None

    if category == "CB":
        condition = condition_of(mnemonic)
        taken = evaluate_condition(condition, state)
        target = ctx.read(0)
        branch = BranchInfo("cond", taken, target, pc + 1, condition)
        next_pc = target if taken else pc + 1
    elif category == "UNCOND":
        target = ctx.read(0)
        branch = BranchInfo("uncond", True, target, pc + 1)
        next_pc = target
    elif category == "IND":
        target = ctx.read(0) & MASK64
        branch = BranchInfo("indirect", True, target, pc + 1)
        next_pc = target
    elif category == "CALL":
        target = ctx.read(0)
        rsp = (state.read_register("RSP") - 8) & MASK64
        old = state.read_memory(rsp, 8)
        state.write_memory(rsp, 8, pc + 1)
        ctx.accesses.append(
            MemAccess(rsp, 8, pc + 1, is_write=True, old_value=old)
        )
        state.write_register("RSP", rsp)
        branch = BranchInfo("call", True, target, pc + 1)
        next_pc = target
    elif category == "RET":
        rsp = state.read_register("RSP")
        target = state.read_memory(rsp, 8)
        ctx.accesses.append(MemAccess(rsp, 8, target, is_write=False))
        state.write_register("RSP", (rsp + 8) & MASK64)
        branch = BranchInfo("ret", True, target, pc + 1)
        next_pc = target
    elif category == "FENCE" or mnemonic == "NOP":
        pass
    elif mnemonic in _BINARY_ARITH or mnemonic in _BINARY_LOGIC:
        _exec_binary(ctx, state)
    elif mnemonic == "MOV":
        _exec_mov(ctx, state)
    elif mnemonic in ("MOVZX", "MOVSX"):
        _exec_extend(ctx, state)
    elif mnemonic in ("INC", "DEC", "NEG", "NOT"):
        _exec_unary(ctx, state)
    elif mnemonic == "IMUL":
        _exec_imul(ctx, state)
    elif mnemonic == "XCHG":
        _exec_xchg(ctx, state)
    elif mnemonic == "LEA":
        _exec_lea(ctx, state)
    elif mnemonic.startswith("CMOV"):
        _exec_cmov(ctx, state, condition_of(mnemonic))
    elif mnemonic.startswith("SET"):
        _exec_setcc(ctx, state, condition_of(mnemonic))
    elif mnemonic in ("DIV", "IDIV"):
        _exec_div(ctx, state)
    else:
        raise InvalidProgram(f"no semantics for {mnemonic!r}")

    return StepResult(
        instruction=instruction,
        pc=pc,
        next_pc=next_pc,
        mem_accesses=ctx.accesses,
        branch=branch,
    )


__all__ = ["evaluate_condition", "execute"]
