"""x86-64 instruction semantics: architectural execution of one instruction.

:func:`execute` runs a single instruction against an
:class:`~repro.emulator.state.ArchState` and returns a
:class:`~repro.emulator.semantics.StepResult` describing the side
effects: memory accesses (for observation clauses and cache modelling),
branch outcomes (for execution clauses and predictors) and the next
program counter.

Flag semantics follow the Intel SDM for the implemented subset; flags the
SDM leaves undefined (e.g. after DIV) are given fixed deterministic values
so that the model and the simulated CPU always agree.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.instruction_set import (
    CONDITION_ALIASES,
    CONDITION_FLAGS,
    condition_of,
)
from repro.emulator.compiled import (
    CompiledOperands,
    compile_cond_branch,
    compile_indirect_branch,
    compile_no_op,
    compile_uncond_branch,
    condition_evaluator,
    make_step,
)
from repro.emulator.errors import DivisionFault, InvalidProgram
from repro.emulator.semantics import (
    MASK64,
    BranchInfo,
    MemAccess,
    OperandContext,
    StepResult,
    mask as _mask,
    signed as _signed,
)
from repro.emulator.state import ArchState


def _parity(value: int) -> bool:
    """PF: set when the low byte has an even number of set bits."""
    return bin(value & 0xFF).count("1") % 2 == 0


# -- flag computation ---------------------------------------------------------
#
# The helpers write ``state.flags`` directly: every flag name below is a
# literal member of the x86 flag set, so the per-write membership check
# of ``ArchState.write_flag`` is pure overhead on the hottest path of
# the emulator (shared by the interpretive and the compiled engine).


def _set_result_flags(state: ArchState, result: int, width: int) -> None:
    flags = state.flags
    flags["ZF"] = result == 0
    flags["SF"] = bool(result >> (width - 1) & 1)
    flags["PF"] = _parity(result)


def _set_add_flags(
    state: ArchState, a: int, b: int, carry_in: int, width: int
) -> int:
    full = a + b + carry_in
    result = full & _mask(width)
    flags = state.flags
    flags["CF"] = full > _mask(width)
    flags["OF"] = bool((~(a ^ b) & (a ^ result)) >> (width - 1) & 1)
    flags["AF"] = bool((a ^ b ^ result) >> 4 & 1)
    _set_result_flags(state, result, width)
    return result


def _set_sub_flags(
    state: ArchState, a: int, b: int, borrow_in: int, width: int
) -> int:
    full = a - b - borrow_in
    result = full & _mask(width)
    flags = state.flags
    flags["CF"] = full < 0
    flags["OF"] = bool(((a ^ b) & (a ^ result)) >> (width - 1) & 1)
    flags["AF"] = bool((a ^ b ^ result) >> 4 & 1)
    _set_result_flags(state, result, width)
    return result


def _set_logic_flags(state: ArchState, result: int, width: int) -> None:
    flags = state.flags
    flags["CF"] = False
    flags["OF"] = False
    flags["AF"] = False
    _set_result_flags(state, result, width)


#: condition code -> bound FLAGS evaluator, built once at import. The
#: former per-call construction of the full 16-entry table was hot-path
#: overhead: every conditional branch, CMOVcc and SETcc evaluation
#: rebuilt it from scratch.
_CONDITION_EVALUATORS: Dict[str, Callable[[ArchState], bool]] = {
    "O": lambda s: s.flags["OF"],
    "NO": lambda s: not s.flags["OF"],
    "B": lambda s: s.flags["CF"],
    "AE": lambda s: not s.flags["CF"],
    "Z": lambda s: s.flags["ZF"],
    "NZ": lambda s: not s.flags["ZF"],
    "BE": lambda s: s.flags["CF"] or s.flags["ZF"],
    "A": lambda s: not (s.flags["CF"] or s.flags["ZF"]),
    "S": lambda s: s.flags["SF"],
    "NS": lambda s: not s.flags["SF"],
    "P": lambda s: s.flags["PF"],
    "NP": lambda s: not s.flags["PF"],
    "L": lambda s: s.flags["SF"] != s.flags["OF"],
    "GE": lambda s: s.flags["SF"] == s.flags["OF"],
    "LE": lambda s: s.flags["ZF"] or (s.flags["SF"] != s.flags["OF"]),
    "G": lambda s: (not s.flags["ZF"]) and (s.flags["SF"] == s.flags["OF"]),
}


def evaluate_condition(code: str, state: ArchState) -> bool:
    """Evaluate a canonical x86 condition code against FLAGS."""
    try:
        evaluator = _CONDITION_EVALUATORS[code]
    except KeyError:
        raise InvalidProgram(f"unknown condition code: {code!r}") from None
    return evaluator(state)


def _condition_evaluator(code: Optional[str]) -> Callable[[ArchState], bool]:
    """The bound evaluator for a pre-resolved condition code."""
    return condition_evaluator(_CONDITION_EVALUATORS, code)


# -- instruction groups -------------------------------------------------------

_BINARY_ARITH = {"ADD", "SUB", "ADC", "SBB", "CMP"}
_BINARY_LOGIC = {"AND", "OR", "XOR", "TEST"}


def _exec_binary(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    a = ctx.read(0)
    b = ctx.read(1) & _mask(width)
    if mnemonic == "ADD":
        result = _set_add_flags(state, a, b, 0, width)
    elif mnemonic == "ADC":
        carry = int(state.read_flag("CF"))
        result = _set_add_flags(state, a, b, carry, width)
    elif mnemonic == "SUB":
        result = _set_sub_flags(state, a, b, 0, width)
    elif mnemonic == "SBB":
        borrow = int(state.read_flag("CF"))
        result = _set_sub_flags(state, a, b, borrow, width)
    elif mnemonic == "CMP":
        _set_sub_flags(state, a, b, 0, width)
        return
    elif mnemonic == "AND" or mnemonic == "TEST":
        result = a & b
        _set_logic_flags(state, result, width)
        if mnemonic == "TEST":
            return
    elif mnemonic == "OR":
        result = a | b
        _set_logic_flags(state, result, width)
    elif mnemonic == "XOR":
        result = a ^ b
        _set_logic_flags(state, result, width)
    else:  # pragma: no cover - guarded by dispatch
        raise InvalidProgram(mnemonic)
    ctx.write(0, result)


def _exec_mov(ctx: OperandContext, state: ArchState) -> None:
    width = ctx.width(0)
    value = ctx.read(1) & _mask(width)
    ctx.write(0, value)


def _exec_extend(ctx: OperandContext, state: ArchState) -> None:
    src_width = ctx.width(1)
    value = ctx.read(1) & _mask(src_width)
    if ctx.instruction.mnemonic == "MOVSX":
        dst_width = ctx.width(0)
        value = _signed(value, src_width) & _mask(dst_width)
    ctx.write(0, value)


def _exec_unary(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    value = ctx.read(0)
    if mnemonic == "INC":
        carry = state.read_flag("CF")
        result = _set_add_flags(state, value, 1, 0, width)
        state.write_flag("CF", carry)  # INC preserves CF
    elif mnemonic == "DEC":
        carry = state.read_flag("CF")
        result = _set_sub_flags(state, value, 1, 0, width)
        state.write_flag("CF", carry)  # DEC preserves CF
    elif mnemonic == "NEG":
        result = _set_sub_flags(state, 0, value, 0, width)
        state.write_flag("CF", value != 0)
    elif mnemonic == "NOT":
        result = (~value) & _mask(width)
    else:  # pragma: no cover
        raise InvalidProgram(mnemonic)
    ctx.write(0, result)


def _exec_imul(ctx: OperandContext, state: ArchState) -> None:
    width = ctx.width(0)
    a = _signed(ctx.read(0), width)
    b = _signed(ctx.read(1) & _mask(width), width)
    product = a * b
    result = product & _mask(width)
    overflow = product != _signed(result, width)
    state.write_flag("CF", overflow)
    state.write_flag("OF", overflow)
    state.write_flag("AF", False)
    _set_result_flags(state, result, width)
    ctx.write(0, result)


def _exec_xchg(ctx: OperandContext, state: ArchState) -> None:
    a = ctx.read(0)
    b = ctx.read(1)
    ctx.write(0, b)
    ctx.write(1, a)


def _exec_lea(ctx: OperandContext, state: ArchState) -> None:
    ctx.write(0, ctx.read(1))


def _exec_cmov(ctx: OperandContext, state: ArchState, condition: str) -> None:
    width = ctx.width(0)
    # x86 always performs the source load, even when the move is suppressed.
    value = ctx.read(1) & _mask(width)
    if evaluate_condition(condition, state):
        ctx.write(0, value)
    elif width == 32:
        # 32-bit CMOV zero-extends the destination even when not moving.
        ctx.write(0, ctx.read(0) & _mask(32))


def _exec_setcc(ctx: OperandContext, state: ArchState, condition: str) -> None:
    ctx.write(0, 1 if evaluate_condition(condition, state) else 0)


def _exec_div(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    divisor = ctx.read(0) & _mask(width)
    if width == 64:
        high = state.read_register("RDX")
        low = state.read_register("RAX")
    else:
        high = state.read_register("EDX")
        low = state.read_register("EAX")
    dividend = (high << width) | low
    if mnemonic == "IDIV":
        dividend = _signed(dividend, 2 * width)
        divisor = _signed(divisor, width)
        if divisor == 0:
            raise DivisionFault("IDIV by zero")
        quotient = int(dividend / divisor)  # truncation toward zero
        remainder = dividend - quotient * divisor
        if not (-(1 << (width - 1)) <= quotient <= (1 << (width - 1)) - 1):
            raise DivisionFault("IDIV quotient overflow")
    else:
        if divisor == 0:
            raise DivisionFault("DIV by zero")
        quotient, remainder = divmod(dividend, divisor)
        if quotient > _mask(width):
            raise DivisionFault("DIV quotient overflow")
    quotient &= _mask(width)
    remainder &= _mask(width)
    if width == 64:
        state.write_register("RAX", quotient)
        state.write_register("RDX", remainder)
    else:
        state.write_register("EAX", quotient)
        state.write_register("EDX", remainder)
    # Flags after DIV/IDIV are architecturally undefined; we define them
    # deterministically so model and simulated CPU agree.
    state.write_flag("CF", False)
    state.write_flag("OF", False)
    state.write_flag("AF", False)
    _set_result_flags(state, quotient, width)


def execute(
    instruction: Instruction,
    state: ArchState,
    pc: int = 0,
    resolve_label: Optional[Callable[[str], int]] = None,
) -> StepResult:
    """Execute one instruction architecturally; return its side effects."""
    ctx = OperandContext(instruction, state, resolve_label)
    mnemonic = instruction.mnemonic
    category = instruction.category
    next_pc = pc + 1
    branch: Optional[BranchInfo] = None

    if category == "CB":
        condition = condition_of(mnemonic)
        taken = evaluate_condition(condition, state)
        target = ctx.read(0)
        branch = BranchInfo("cond", taken, target, pc + 1, condition)
        next_pc = target if taken else pc + 1
    elif category == "UNCOND":
        target = ctx.read(0)
        branch = BranchInfo("uncond", True, target, pc + 1)
        next_pc = target
    elif category == "IND":
        target = ctx.read(0) & MASK64
        branch = BranchInfo("indirect", True, target, pc + 1)
        next_pc = target
    elif category == "CALL":
        target = ctx.read(0)
        rsp = (state.read_register("RSP") - 8) & MASK64
        old = state.read_memory(rsp, 8)
        state.write_memory(rsp, 8, pc + 1)
        ctx.accesses.append(
            MemAccess(rsp, 8, pc + 1, is_write=True, old_value=old)
        )
        state.write_register("RSP", rsp)
        branch = BranchInfo("call", True, target, pc + 1)
        next_pc = target
    elif category == "RET":
        rsp = state.read_register("RSP")
        target = state.read_memory(rsp, 8)
        ctx.accesses.append(MemAccess(rsp, 8, target, is_write=False))
        state.write_register("RSP", (rsp + 8) & MASK64)
        branch = BranchInfo("ret", True, target, pc + 1)
        next_pc = target
    elif category == "FENCE" or mnemonic == "NOP":
        pass
    elif mnemonic in _BINARY_ARITH or mnemonic in _BINARY_LOGIC:
        _exec_binary(ctx, state)
    elif mnemonic == "MOV":
        _exec_mov(ctx, state)
    elif mnemonic in ("MOVZX", "MOVSX"):
        _exec_extend(ctx, state)
    elif mnemonic in ("INC", "DEC", "NEG", "NOT"):
        _exec_unary(ctx, state)
    elif mnemonic == "IMUL":
        _exec_imul(ctx, state)
    elif mnemonic == "XCHG":
        _exec_xchg(ctx, state)
    elif mnemonic == "LEA":
        _exec_lea(ctx, state)
    elif mnemonic.startswith("CMOV"):
        _exec_cmov(ctx, state, condition_of(mnemonic))
    elif mnemonic.startswith("SET"):
        _exec_setcc(ctx, state, condition_of(mnemonic))
    elif mnemonic in ("DIV", "IDIV"):
        _exec_div(ctx, state)
    else:
        raise InvalidProgram(f"no semantics for {mnemonic!r}")

    return StepResult(
        instruction=instruction,
        pc=pc,
        next_pc=next_pc,
        mem_accesses=ctx.accesses,
        branch=branch,
    )


# -- compile-once lowering (repro.emulator.compiled) --------------------------
#
# Each compiler below specializes one mnemonic (or control-flow
# category) into a closure over precompiled operand accessors — the
# compile-time counterpart of the ``_exec_*`` interpreters above, with
# the mnemonic dispatch, operand ``isinstance`` chains and
# ``condition_of`` parsing hoisted out of the per-step path. The bodies
# mirror the interpreters statement for statement so the two paths stay
# byte-identical (asserted by tests/test_compiled_ir.py for every
# catalog entry and by the randomized program property tests).

_CompileFn = Callable[[Instruction, CompiledOperands, int], Callable]


def _compile_cb(instruction, ops, pc):
    condition = condition_of(instruction.mnemonic)
    evaluator = _condition_evaluator(condition)
    return compile_cond_branch(instruction, ops, pc, condition, evaluator)


def _compile_call(instruction, ops, pc):
    read0 = ops.reader(0)
    return_pc = pc + 1

    def run(state):
        accesses: List[MemAccess] = []
        target = read0(state, accesses)
        rsp = (state.registers["RSP"] - 8) & MASK64
        old = state.read_memory(rsp, 8)
        state.write_memory(rsp, 8, return_pc)
        accesses.append(
            MemAccess(rsp, 8, return_pc, is_write=True, old_value=old)
        )
        state.registers["RSP"] = rsp
        branch = BranchInfo("call", True, target, return_pc)
        return StepResult(instruction, pc, target, accesses, branch)

    return run


def _compile_ret(instruction, ops, pc):
    fallthrough = pc + 1

    def run(state):
        accesses: List[MemAccess] = []
        rsp = state.registers["RSP"]
        target = state.read_memory(rsp, 8)
        accesses.append(MemAccess(rsp, 8, target, is_write=False))
        state.registers["RSP"] = (rsp + 8) & MASK64
        branch = BranchInfo("ret", True, target, fallthrough)
        return StepResult(instruction, pc, target, accesses, branch)

    return run


def _compile_binary(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    width = ops.width(0)
    wm = _mask(width)
    read0 = ops.reader(0)
    read1 = ops.reader(1)
    write0 = None if mnemonic in ("CMP", "TEST") else ops.writer(0)

    if mnemonic == "ADD":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            write0(state, _set_add_flags(state, a, b, 0, width), accesses)
    elif mnemonic == "ADC":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            carry = int(state.flags["CF"])
            write0(state, _set_add_flags(state, a, b, carry, width), accesses)
    elif mnemonic == "SUB":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            write0(state, _set_sub_flags(state, a, b, 0, width), accesses)
    elif mnemonic == "SBB":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            borrow = int(state.flags["CF"])
            write0(state, _set_sub_flags(state, a, b, borrow, width), accesses)
    elif mnemonic == "CMP":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            _set_sub_flags(state, a, b, 0, width)
    elif mnemonic == "TEST":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            _set_logic_flags(state, a & b, width)
    elif mnemonic == "AND":
        def body(state, accesses):
            result = read0(state, accesses) & read1(state, accesses) & wm
            _set_logic_flags(state, result, width)
            write0(state, result, accesses)
    elif mnemonic == "OR":
        def body(state, accesses):
            result = read0(state, accesses) | (read1(state, accesses) & wm)
            _set_logic_flags(state, result, width)
            write0(state, result, accesses)
    elif mnemonic == "XOR":
        def body(state, accesses):
            result = read0(state, accesses) ^ (read1(state, accesses) & wm)
            _set_logic_flags(state, result, width)
            write0(state, result, accesses)
    else:  # pragma: no cover - guarded by the dispatch table
        raise InvalidProgram(mnemonic)
    return make_step(instruction, pc, body)


def _compile_mov(instruction, ops, pc):
    wm = _mask(ops.width(0))
    read1 = ops.reader(1)
    write0 = ops.writer(0)

    def body(state, accesses):
        write0(state, read1(state, accesses) & wm, accesses)

    return make_step(instruction, pc, body)


def _compile_extend(instruction, ops, pc):
    src_width = ops.width(1)
    src_mask = _mask(src_width)
    read1 = ops.reader(1)
    write0 = ops.writer(0)
    if instruction.mnemonic == "MOVSX":
        dst_width = ops.width(0)
        dst_mask = _mask(dst_width)

        def body(state, accesses):
            value = read1(state, accesses) & src_mask
            write0(state, _signed(value, src_width) & dst_mask, accesses)

    else:
        def body(state, accesses):
            write0(state, read1(state, accesses) & src_mask, accesses)

    return make_step(instruction, pc, body)


def _compile_unary(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    width = ops.width(0)
    wm = _mask(width)
    read0 = ops.reader(0)
    write0 = ops.writer(0)

    if mnemonic == "INC":
        def body(state, accesses):
            value = read0(state, accesses)
            carry = state.flags["CF"]
            result = _set_add_flags(state, value, 1, 0, width)
            state.flags["CF"] = carry  # INC preserves CF
            write0(state, result, accesses)
    elif mnemonic == "DEC":
        def body(state, accesses):
            value = read0(state, accesses)
            carry = state.flags["CF"]
            result = _set_sub_flags(state, value, 1, 0, width)
            state.flags["CF"] = carry  # DEC preserves CF
            write0(state, result, accesses)
    elif mnemonic == "NEG":
        def body(state, accesses):
            value = read0(state, accesses)
            result = _set_sub_flags(state, 0, value, 0, width)
            state.flags["CF"] = value != 0
            write0(state, result, accesses)
    elif mnemonic == "NOT":
        def body(state, accesses):
            write0(state, (~read0(state, accesses)) & wm, accesses)
    else:  # pragma: no cover
        raise InvalidProgram(mnemonic)
    return make_step(instruction, pc, body)


def _compile_imul(instruction, ops, pc):
    width = ops.width(0)
    wm = _mask(width)
    read0 = ops.reader(0)
    read1 = ops.reader(1)
    write0 = ops.writer(0)

    def body(state, accesses):
        a = _signed(read0(state, accesses), width)
        b = _signed(read1(state, accesses) & wm, width)
        product = a * b
        result = product & wm
        overflow = product != _signed(result, width)
        flags = state.flags
        flags["CF"] = overflow
        flags["OF"] = overflow
        flags["AF"] = False
        _set_result_flags(state, result, width)
        write0(state, result, accesses)

    return make_step(instruction, pc, body)


def _compile_xchg(instruction, ops, pc):
    read0 = ops.reader(0)
    read1 = ops.reader(1)
    write0 = ops.writer(0)
    write1 = ops.writer(1)

    def body(state, accesses):
        a = read0(state, accesses)
        b = read1(state, accesses)
        write0(state, b, accesses)
        write1(state, a, accesses)

    return make_step(instruction, pc, body)


def _compile_lea(instruction, ops, pc):
    read1 = ops.reader(1)
    write0 = ops.writer(0)

    def body(state, accesses):
        write0(state, read1(state, accesses), accesses)

    return make_step(instruction, pc, body)


def _compile_cmov(instruction, ops, pc):
    evaluator = _condition_evaluator(condition_of(instruction.mnemonic))
    width = ops.width(0)
    wm = _mask(width)
    read0 = ops.reader(0)
    read1 = ops.reader(1)
    write0 = ops.writer(0)

    def body(state, accesses):
        # x86 always performs the source load, even when suppressed.
        value = read1(state, accesses) & wm
        if evaluator(state):
            write0(state, value, accesses)
        elif width == 32:
            # 32-bit CMOV zero-extends the destination even when not moving.
            write0(state, read0(state, accesses) & wm, accesses)

    return make_step(instruction, pc, body)


def _compile_setcc(instruction, ops, pc):
    evaluator = _condition_evaluator(condition_of(instruction.mnemonic))
    write0 = ops.writer(0)

    def body(state, accesses):
        write0(state, 1 if evaluator(state) else 0, accesses)

    return make_step(instruction, pc, body)


def _compile_div(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    width = ops.width(0)
    wm = _mask(width)
    half_mask = wm  # RDX:RAX for 64-bit, EDX:EAX (zero-extended) for 32-bit
    signed_div = mnemonic == "IDIV"
    quotient_min = -(1 << (width - 1))
    quotient_max = (1 << (width - 1)) - 1
    read0 = ops.reader(0)

    def body(state, accesses):
        divisor = read0(state, accesses) & wm
        registers = state.registers
        high = registers["RDX"] & half_mask
        low = registers["RAX"] & half_mask
        dividend = (high << width) | low
        if signed_div:
            dividend = _signed(dividend, 2 * width)
            divisor = _signed(divisor, width)
            if divisor == 0:
                raise DivisionFault("IDIV by zero")
            quotient = int(dividend / divisor)  # truncation toward zero
            remainder = dividend - quotient * divisor
            if not quotient_min <= quotient <= quotient_max:
                raise DivisionFault("IDIV quotient overflow")
        else:
            if divisor == 0:
                raise DivisionFault("DIV by zero")
            quotient, remainder = divmod(dividend, divisor)
            if quotient > wm:
                raise DivisionFault("DIV quotient overflow")
        quotient &= wm
        remainder &= wm
        # 64-bit writes replace, 32-bit results are zero-extended: both
        # reduce to storing the width-masked value in the canonical GPR.
        registers["RAX"] = quotient
        registers["RDX"] = remainder
        flags = state.flags
        flags["CF"] = False
        flags["OF"] = False
        flags["AF"] = False
        _set_result_flags(state, quotient, width)

    return make_step(instruction, pc, body)


#: control-flow categories, compiled by shape rather than mnemonic
_CATEGORY_COMPILERS: Dict[str, _CompileFn] = {
    "CB": _compile_cb,
    "UNCOND": compile_uncond_branch,
    "IND": compile_indirect_branch,
    "CALL": _compile_call,
    "RET": _compile_ret,
    "FENCE": compile_no_op,
}

#: the per-mnemonic handler table the program compiler binds from
_COMPILERS: Dict[str, _CompileFn] = {
    "ADD": _compile_binary,
    "ADC": _compile_binary,
    "SUB": _compile_binary,
    "SBB": _compile_binary,
    "CMP": _compile_binary,
    "AND": _compile_binary,
    "OR": _compile_binary,
    "XOR": _compile_binary,
    "TEST": _compile_binary,
    "MOV": _compile_mov,
    "MOVZX": _compile_extend,
    "MOVSX": _compile_extend,
    "INC": _compile_unary,
    "DEC": _compile_unary,
    "NEG": _compile_unary,
    "NOT": _compile_unary,
    "IMUL": _compile_imul,
    "XCHG": _compile_xchg,
    "LEA": _compile_lea,
    "DIV": _compile_div,
    "IDIV": _compile_div,
    "NOP": compile_no_op,
}
# one entry per CMOVcc/SETcc form (canonical codes and accepted aliases)
for _code in (*CONDITION_FLAGS, *CONDITION_ALIASES):
    _COMPILERS[f"CMOV{_code}"] = _compile_cmov
    _COMPILERS[f"SET{_code}"] = _compile_setcc
del _code


def compile_instruction(
    instruction: Instruction,
    pc: int = 0,
    label_to_index=None,
) -> Callable[[ArchState], StepResult]:
    """Lower one x86-64 instruction into a bound step closure.

    The returned closure is byte-identical in behaviour to
    :func:`execute` for this instruction at this ``pc``; the mnemonic
    dispatch, operand resolution and condition parsing happen here,
    exactly once.
    """
    ops = CompiledOperands(instruction, label_to_index)
    compiler = _CATEGORY_COMPILERS.get(instruction.category)
    if compiler is None:
        compiler = _COMPILERS.get(instruction.mnemonic)
    if compiler is None:
        raise InvalidProgram(f"no semantics for {instruction.mnemonic!r}")
    return compiler(instruction, ops, pc)


# -- dead-flag handler variants (repro.analysis.deadflags) --------------------
#
# When liveness proves that *every* flag an op writes is rewritten
# before any read on every CFG path (speculative paths included), the
# RFLAGS computation — carry/overflow/adjust algebra, parity popcount —
# is pure overhead. The variants below perform the identical register
# and memory state transitions (same operand reads, in the same order,
# so memory-access recording cannot drift) and identical faults, but
# skip the flag writes. They are only installed by the dead-flag pass,
# never by ``compile_instruction``, and the op's ``flags_written``
# metadata is left untouched so the CPU model's flag-readiness timing
# and the execution log are unchanged.


def _compile_binary_no_flags(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    width = ops.width(0)
    wm = _mask(width)
    read0 = ops.reader(0)
    read1 = ops.reader(1)
    write0 = None if mnemonic in ("CMP", "TEST") else ops.writer(0)

    if mnemonic == "ADD":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            write0(state, (a + b) & wm, accesses)
    elif mnemonic == "ADC":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            write0(state, (a + b + int(state.flags["CF"])) & wm, accesses)
    elif mnemonic == "SUB":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            write0(state, (a - b) & wm, accesses)
    elif mnemonic == "SBB":
        def body(state, accesses):
            a = read0(state, accesses)
            b = read1(state, accesses) & wm
            write0(state, (a - b - int(state.flags["CF"])) & wm, accesses)
    elif mnemonic in ("CMP", "TEST"):
        # dead-flag compares still perform both reads: a memory operand's
        # access must be recorded (and observed) exactly as before
        def body(state, accesses):
            read0(state, accesses)
            read1(state, accesses)
    elif mnemonic == "AND":
        def body(state, accesses):
            write0(
                state,
                read0(state, accesses) & read1(state, accesses) & wm,
                accesses,
            )
    elif mnemonic == "OR":
        def body(state, accesses):
            write0(
                state,
                read0(state, accesses) | (read1(state, accesses) & wm),
                accesses,
            )
    elif mnemonic == "XOR":
        def body(state, accesses):
            write0(
                state,
                read0(state, accesses) ^ (read1(state, accesses) & wm),
                accesses,
            )
    else:  # pragma: no cover - guarded by the dispatch table
        raise InvalidProgram(mnemonic)
    return make_step(instruction, pc, body)


def _compile_unary_no_flags(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    wm = _mask(ops.width(0))
    read0 = ops.reader(0)
    write0 = ops.writer(0)

    if mnemonic == "INC":
        def body(state, accesses):
            write0(state, (read0(state, accesses) + 1) & wm, accesses)
    elif mnemonic == "DEC":
        def body(state, accesses):
            write0(state, (read0(state, accesses) - 1) & wm, accesses)
    elif mnemonic == "NEG":
        def body(state, accesses):
            write0(state, (-read0(state, accesses)) & wm, accesses)
    else:  # pragma: no cover
        raise InvalidProgram(mnemonic)
    return make_step(instruction, pc, body)


def _compile_imul_no_flags(instruction, ops, pc):
    wm = _mask(ops.width(0))
    read0 = ops.reader(0)
    read1 = ops.reader(1)
    write0 = ops.writer(0)

    def body(state, accesses):
        # the width-masked product is sign-agnostic, so the signed
        # conversions of the flag-setting variant drop out entirely
        write0(
            state,
            (read0(state, accesses) * (read1(state, accesses) & wm)) & wm,
            accesses,
        )

    return make_step(instruction, pc, body)


def _compile_div_no_flags(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    width = ops.width(0)
    wm = _mask(width)
    signed_div = mnemonic == "IDIV"
    quotient_min = -(1 << (width - 1))
    quotient_max = (1 << (width - 1)) - 1
    read0 = ops.reader(0)

    def body(state, accesses):
        divisor = read0(state, accesses) & wm
        registers = state.registers
        dividend = ((registers["RDX"] & wm) << width) | (registers["RAX"] & wm)
        if signed_div:
            dividend = _signed(dividend, 2 * width)
            divisor = _signed(divisor, width)
            if divisor == 0:
                raise DivisionFault("IDIV by zero")
            quotient = int(dividend / divisor)  # truncation toward zero
            remainder = dividend - quotient * divisor
            if not quotient_min <= quotient <= quotient_max:
                raise DivisionFault("IDIV quotient overflow")
        else:
            if divisor == 0:
                raise DivisionFault("DIV by zero")
            quotient, remainder = divmod(dividend, divisor)
            if quotient > wm:
                raise DivisionFault("DIV quotient overflow")
        registers["RAX"] = quotient & wm
        registers["RDX"] = remainder & wm

    return make_step(instruction, pc, body)


#: mnemonics with a flag-skipping variant (NOT, MOV etc. write no flags)
_NO_FLAG_COMPILERS: Dict[str, _CompileFn] = {
    "ADD": _compile_binary_no_flags,
    "ADC": _compile_binary_no_flags,
    "SUB": _compile_binary_no_flags,
    "SBB": _compile_binary_no_flags,
    "CMP": _compile_binary_no_flags,
    "AND": _compile_binary_no_flags,
    "OR": _compile_binary_no_flags,
    "XOR": _compile_binary_no_flags,
    "TEST": _compile_binary_no_flags,
    "INC": _compile_unary_no_flags,
    "DEC": _compile_unary_no_flags,
    "NEG": _compile_unary_no_flags,
    "IMUL": _compile_imul_no_flags,
    "DIV": _compile_div_no_flags,
    "IDIV": _compile_div_no_flags,
}


def compile_instruction_no_flags(
    instruction: Instruction,
    pc: int = 0,
    label_to_index=None,
) -> Optional[Callable[[ArchState], StepResult]]:
    """A handler identical to :func:`compile_instruction`'s except that
    flag writes are skipped, or ``None`` when no variant exists (the
    dead-flag pass then keeps the original handler)."""
    if instruction.category in _CATEGORY_COMPILERS:
        return None
    compiler = _NO_FLAG_COMPILERS.get(instruction.mnemonic)
    if compiler is None:
        return None
    return compiler(instruction, CompiledOperands(instruction, label_to_index), pc)


__all__ = [
    "compile_instruction",
    "compile_instruction_no_flags",
    "evaluate_condition",
    "execute",
]
