"""The x86-64 architecture backend.

Wraps the x86-64 subset implementation — register file and views
(:mod:`repro.isa.registers`), the data-driven instruction catalog
(:mod:`repro.isa.instruction_set`), Intel-syntax assembler
(:mod:`repro.isa.assembler`) and the SDM-faithful semantics
(:mod:`repro.arch.x86_64.semantics`) — into an
:class:`~repro.arch.base.Architecture` descriptor.

Conventions (paper §5.1 / Figure 3): R14 holds the sandbox base, test
cases use a four-register pool (RAX/RBX/RCX/RDX), memory offsets are
masked with ``AND reg, 0b111111000000`` plus a per-test-case
displacement, and DIV/IDIV operands are rewritten so #DE can never be
raised. LFENCE and MFENCE are the serializing instructions that close a
speculation window; SFENCE only orders stores and does *not* serialize.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arch.base import Architecture, RegisterFile
from repro.isa.instruction import Instruction, TestCaseProgram
from repro.isa.instruction_set import (
    CONDITION_CODES,
    CONDITION_FLAGS,
    FULL_INSTRUCTION_SET,
    _SUBSET_CATEGORIES,
    condition_of,
)
from repro.isa.operands import ImmediateOperand, RegisterOperand
from repro.isa.registers import (
    FLAG_BITS,
    GPR_NAMES,
    SANDBOX_BASE_REGISTER,
    _LEGACY_VIEWS,
    view_name,
)
from repro.isa.assembler import parse_program, render_instruction
from repro.arch.x86_64 import semantics


class X86_64(Architecture):
    """The x86-64 backend descriptor."""

    name = "x86_64"
    registers = RegisterFile(
        gpr_names=GPR_NAMES,
        flag_bits=FLAG_BITS,
        views=_LEGACY_VIEWS,
        sandbox_base_register=SANDBOX_BASE_REGISTER,
        stack_register="RSP",
        view_name_fn=view_name,
    )
    instruction_set = FULL_INSTRUCTION_SET
    subset_categories = dict(_SUBSET_CATEGORIES)
    condition_codes = CONDITION_CODES
    condition_flags = dict(CONDITION_FLAGS)
    serializing_instructions = frozenset({"LFENCE", "MFENCE"})
    fence_mnemonic = "LFENCE"
    multiply_mnemonics = frozenset({"IMUL"})
    default_register_pool = ("RAX", "RBX", "RCX", "RDX")
    uncond_branch_mnemonic = "JMP"

    def execute(self, instruction, state, pc=0, resolve_label=None):
        return semantics.execute(instruction, state, pc, resolve_label)

    def compile_instruction(self, instruction, pc=0, label_to_index=None):
        return semantics.compile_instruction(instruction, pc, label_to_index)

    def compile_instruction_no_flags(
        self, instruction, pc=0, label_to_index=None
    ):
        return semantics.compile_instruction_no_flags(
            instruction, pc, label_to_index
        )

    def evaluate_condition(self, code, state):
        return semantics.evaluate_condition(code, state)

    def condition_of(self, mnemonic: str) -> Optional[str]:
        return condition_of(mnemonic)

    def parse_program(
        self, text: str, name: str = "testcase", instruction_set=None
    ) -> TestCaseProgram:
        return parse_program(text, name, instruction_set)

    def render_instruction(self, instruction: Instruction) -> str:
        return render_instruction(instruction)

    def cond_branch_mnemonic(self, code: str) -> str:
        return f"J{code}"

    # -- generator hooks ----------------------------------------------------

    def address_instrumentation(
        self, index_register: str, mask: int, offset: int
    ) -> Tuple[List[Instruction], int]:
        """``AND reg, 0b111111000000`` confines the offset (§5.1); the
        per-test-case offset rides in the operand displacement."""
        spec = self.instruction_set.find("AND", ("REG", "IMM"), 64)
        masking = Instruction(
            spec, (RegisterOperand(index_register), ImmediateOperand(mask))
        )
        return [masking], offset

    def division_guards(self, instruction: Instruction) -> List[Instruction]:
        """Instrumentation preventing #DE (paper §5.1 step 4b).

        ``MOV RDX, 0`` removes the high half of the dividend; ``AND RAX``
        bounds the quotient so IDIV cannot overflow; ``OR divisor, 1``
        makes the divisor nonzero.
        """
        from repro.isa.operands import MemoryOperand

        guards: List[Instruction] = []
        mov = self.instruction_set.find("MOV", ("REG", "IMM"), 64)
        guards.append(
            Instruction(mov, (RegisterOperand("RDX"), ImmediateOperand(0)))
        )
        and_spec = self.instruction_set.find("AND", ("REG", "IMM"), 64)
        guards.append(
            Instruction(
                and_spec,
                (RegisterOperand("RAX"), ImmediateOperand(0x3FFFFFFF)),
            )
        )
        divisor = instruction.operands[0]
        if isinstance(divisor, RegisterOperand):
            or_spec = self.instruction_set.find(
                "OR", ("REG", "IMM"), divisor.width
            )
            guards.append(Instruction(or_spec, (divisor, ImmediateOperand(1))))
        elif isinstance(divisor, MemoryOperand):
            or_spec = self.instruction_set.find(
                "OR", ("MEM", "IMM"), divisor.width
            )
            guards.append(Instruction(or_spec, (divisor, ImmediateOperand(1))))
        return guards

    def division_register_pool(self, pool: Sequence[str]) -> List[str]:
        # DIV RDX always overflows (#DE): the divisor would be the
        # dividend's own high half.
        return [r for r in pool if r != "RDX"] or ["RBX"]

    def division_latency_value(self, state, instruction: Instruction) -> int:
        # After DIV/IDIV the quotient is in RAX; its magnitude drives the
        # radix-16 divider's latency (§6.3).
        return state.read_register("RAX")


ARCHITECTURE = X86_64()

__all__ = ["ARCHITECTURE", "X86_64"]
