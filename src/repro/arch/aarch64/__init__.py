"""The AArch64 architecture backend.

A reduced but real ISA: three-operand data processing (with NZCV-setting
forms), LDR/STR with register and immediate offsets, UDIV as the
variable-latency instruction, ``B.cond``/``B``/``BR`` control flow and
DSB/ISB as the serializing barriers. The full MRT pipeline — generate,
contract-trace, uarch-execute, analyze, minimize — runs end to end on
this backend; see ``docs/architectures.md`` for what a backend must
provide.

Conventions: X27 holds the sandbox base (the R14 analogue), generated
code uses the X0-X3 pool, and because AArch64 addressing has no
base+index+displacement form, the per-test-case offset (§5.1) is added
to the index register by the masking instrumentation instead of riding
in the operand displacement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arch.base import Architecture, RegisterFile
from repro.isa.instruction import Instruction, TestCaseProgram
from repro.isa.operands import ImmediateOperand, RegisterOperand
from repro.arch.aarch64 import assembler, semantics
from repro.arch.aarch64.instruction_set import (
    CONDITION_CODES,
    CONDITION_FLAGS,
    FULL_INSTRUCTION_SET,
    SUBSET_CATEGORIES,
    condition_of,
)
from repro.arch.aarch64.registers import (
    FLAG_BITS,
    GPR_NAMES,
    SANDBOX_BASE_REGISTER,
    VIEWS,
    view_name,
)


class AArch64(Architecture):
    """The AArch64 backend descriptor."""

    name = "aarch64"
    registers = RegisterFile(
        gpr_names=GPR_NAMES,
        flag_bits=FLAG_BITS,
        views=VIEWS,
        sandbox_base_register=SANDBOX_BASE_REGISTER,
        stack_register=None,
        view_name_fn=view_name,
    )
    instruction_set = FULL_INSTRUCTION_SET
    subset_categories = dict(SUBSET_CATEGORIES)
    condition_codes = CONDITION_CODES
    condition_flags = dict(CONDITION_FLAGS)
    serializing_instructions = frozenset({"DSB", "ISB"})
    fence_mnemonic = "DSB"
    multiply_mnemonics = frozenset()
    default_register_pool = ("X0", "X1", "X2", "X3")
    uncond_branch_mnemonic = "B"

    def execute(self, instruction, state, pc=0, resolve_label=None):
        return semantics.execute(instruction, state, pc, resolve_label)

    def compile_instruction(self, instruction, pc=0, label_to_index=None):
        return semantics.compile_instruction(instruction, pc, label_to_index)

    def compile_instruction_no_flags(
        self, instruction, pc=0, label_to_index=None
    ):
        return semantics.compile_instruction_no_flags(
            instruction, pc, label_to_index
        )

    def evaluate_condition(self, code, state):
        return semantics.evaluate_condition(code, state)

    def condition_of(self, mnemonic: str) -> Optional[str]:
        return condition_of(mnemonic)

    def parse_program(
        self, text: str, name: str = "testcase", instruction_set=None
    ) -> TestCaseProgram:
        return assembler.parse_program(text, name, instruction_set)

    def render_instruction(self, instruction: Instruction) -> str:
        return assembler.render_instruction(instruction)

    def cond_branch_mnemonic(self, code: str) -> str:
        return f"B.{code}"

    # -- generator hooks ----------------------------------------------------

    def address_instrumentation(
        self, index_register: str, mask: int, offset: int
    ) -> Tuple[List[Instruction], int]:
        """``AND Xi, Xi, #mask`` confines the offset; the per-test-case
        displacement is added to the index register (AArch64 addressing
        has no base+index+displacement form), so the memory operand
        carries no displacement."""
        and_spec = self.instruction_set.find("AND", ("REG", "REG", "IMM"), 64)
        register = RegisterOperand(index_register)
        instructions = [
            Instruction(and_spec, (register, register, ImmediateOperand(mask)))
        ]
        if offset:
            add_spec = self.instruction_set.find(
                "ADD", ("REG", "REG", "IMM"), 64
            )
            instructions.append(
                Instruction(
                    add_spec, (register, register, ImmediateOperand(offset))
                )
            )
        return instructions, 0

    def division_guards(self, instruction: Instruction) -> List[Instruction]:
        # UDIV cannot fault: division by zero architecturally yields zero.
        return []

    def division_register_pool(self, pool: Sequence[str]) -> List[str]:
        return list(pool)

    def division_latency_value(self, state, instruction: Instruction) -> int:
        # The quotient lands in the destination register of UDIV.
        destination = instruction.operands[0]
        return state.read_register(destination.name)


ARCHITECTURE = AArch64()

__all__ = ["AArch64", "ARCHITECTURE"]
