"""AArch64 instruction semantics for the reduced catalog.

Semantics follow the Arm ARM for the implemented subset. Notable
divergences from x86 that the contract/CPU layers must not assume away:

- flags (NZCV) are only written by the S-suffixed forms and CMP/TST;
  plain ADD/SUB/AND never touch them;
- the carry flag after a subtraction is the *inverse* of x86's borrow
  convention: ``SUBS`` sets C when no borrow occurred;
- ``UDIV`` never faults — division by zero architecturally yields zero
  (the backend therefore needs no §5.1 division guards).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.isa.instruction import Instruction
from repro.emulator.compiled import (
    CompiledOperands,
    compile_cond_branch,
    compile_indirect_branch,
    compile_no_op,
    compile_uncond_branch,
    condition_evaluator,
    make_step,
)
from repro.emulator.errors import InvalidProgram
from repro.emulator.semantics import (
    MASK64,
    BranchInfo,
    OperandContext,
    StepResult,
    mask as _mask,
)
from repro.emulator.state import ArchState
from repro.arch.aarch64.instruction_set import condition_of


# The flag helpers write ``state.flags`` directly: every name is a
# literal NZCV member, so ``write_flag``'s membership check is pure
# hot-path overhead (shared by the interpretive and compiled engines).


def _set_nz(state: ArchState, result: int, width: int) -> None:
    flags = state.flags
    flags["N"] = bool(result >> (width - 1) & 1)
    flags["Z"] = result == 0


def _add_with_flags(
    state: ArchState, a: int, b: int, width: int, set_flags: bool
) -> int:
    full = a + b
    result = full & _mask(width)
    if set_flags:
        flags = state.flags
        flags["C"] = full > _mask(width)
        flags["V"] = bool((~(a ^ b) & (a ^ result)) >> (width - 1) & 1)
        _set_nz(state, result, width)
    return result


def _sub_with_flags(
    state: ArchState, a: int, b: int, width: int, set_flags: bool
) -> int:
    full = a - b
    result = full & _mask(width)
    if set_flags:
        # AArch64 convention: C set when NO borrow occurred.
        flags = state.flags
        flags["C"] = full >= 0
        flags["V"] = bool(((a ^ b) & (a ^ result)) >> (width - 1) & 1)
        _set_nz(state, result, width)
    return result


def _logic_flags(state: ArchState, result: int, width: int) -> None:
    flags = state.flags
    flags["C"] = False
    flags["V"] = False
    _set_nz(state, result, width)


#: condition code -> bound NZCV evaluator, built once at import (the
#: former per-call table construction was hot-path overhead).
_CONDITION_EVALUATORS: Dict[str, Callable[[ArchState], bool]] = {
    "EQ": lambda s: s.flags["Z"],
    "NE": lambda s: not s.flags["Z"],
    "CS": lambda s: s.flags["C"],
    "CC": lambda s: not s.flags["C"],
    "MI": lambda s: s.flags["N"],
    "PL": lambda s: not s.flags["N"],
    "VS": lambda s: s.flags["V"],
    "VC": lambda s: not s.flags["V"],
    "HI": lambda s: s.flags["C"] and not s.flags["Z"],
    "LS": lambda s: not (s.flags["C"] and not s.flags["Z"]),
    "GE": lambda s: s.flags["N"] == s.flags["V"],
    "LT": lambda s: s.flags["N"] != s.flags["V"],
    "GT": lambda s: (not s.flags["Z"]) and (s.flags["N"] == s.flags["V"]),
    "LE": lambda s: s.flags["Z"] or (s.flags["N"] != s.flags["V"]),
}


def evaluate_condition(code: str, state: ArchState) -> bool:
    """Evaluate a canonical AArch64 condition code against NZCV."""
    try:
        evaluator = _CONDITION_EVALUATORS[code]
    except KeyError:
        raise InvalidProgram(f"unknown condition code: {code!r}") from None
    return evaluator(state)


def _condition_evaluator(code: Optional[str]) -> Callable[[ArchState], bool]:
    """The bound evaluator for a pre-resolved condition code."""
    return condition_evaluator(_CONDITION_EVALUATORS, code)


_THREE_OP = {"ADD", "SUB", "AND", "EOR", "ORR", "ADDS", "SUBS", "ANDS"}


def _exec_data_processing(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    a = ctx.read(1) & _mask(width)
    b = ctx.read(2) & _mask(width)
    set_flags = mnemonic.endswith("S")
    if mnemonic in ("ADD", "ADDS"):
        result = _add_with_flags(state, a, b, width, set_flags)
    elif mnemonic in ("SUB", "SUBS"):
        result = _sub_with_flags(state, a, b, width, set_flags)
    elif mnemonic in ("AND", "ANDS"):
        result = a & b
        if set_flags:
            _logic_flags(state, result, width)
    elif mnemonic == "EOR":
        result = a ^ b
    elif mnemonic == "ORR":
        result = a | b
    else:  # pragma: no cover - guarded by dispatch
        raise InvalidProgram(mnemonic)
    ctx.write(0, result)


def _exec_compare(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    a = ctx.read(0) & _mask(width)
    b = ctx.read(1) & _mask(width)
    if mnemonic == "CMP":
        _sub_with_flags(state, a, b, width, set_flags=True)
    else:  # TST
        _logic_flags(state, a & b, width)


def _exec_shift(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    value = ctx.read(1) & _mask(width)
    amount = ctx.read(2) % width
    if mnemonic == "LSL":
        result = (value << amount) & _mask(width)
    else:  # LSR
        result = value >> amount
    ctx.write(0, result)


def _exec_udiv(ctx: OperandContext, state: ArchState) -> None:
    width = ctx.width(0)
    dividend = ctx.read(1) & _mask(width)
    divisor = ctx.read(2) & _mask(width)
    # AArch64: division by zero yields zero, no fault.
    quotient = 0 if divisor == 0 else dividend // divisor
    ctx.write(0, quotient)


def execute(
    instruction: Instruction,
    state: ArchState,
    pc: int = 0,
    resolve_label: Optional[Callable[[str], int]] = None,
) -> StepResult:
    """Execute one AArch64 instruction; return its side effects."""
    ctx = OperandContext(instruction, state, resolve_label)
    mnemonic = instruction.mnemonic
    category = instruction.category
    next_pc = pc + 1
    branch: Optional[BranchInfo] = None

    if category == "CB":
        condition = condition_of(mnemonic)
        taken = evaluate_condition(condition, state)
        target = ctx.read(0)
        branch = BranchInfo("cond", taken, target, pc + 1, condition)
        next_pc = target if taken else pc + 1
    elif category == "UNCOND":
        target = ctx.read(0)
        branch = BranchInfo("uncond", True, target, pc + 1)
        next_pc = target
    elif category == "IND":
        target = ctx.read(0) & MASK64
        branch = BranchInfo("indirect", True, target, pc + 1)
        next_pc = target
    elif category == "FENCE" or mnemonic == "NOP":
        pass
    elif mnemonic in _THREE_OP:
        _exec_data_processing(ctx, state)
    elif mnemonic in ("CMP", "TST"):
        _exec_compare(ctx, state)
    elif mnemonic in ("LSL", "LSR"):
        _exec_shift(ctx, state)
    elif mnemonic in ("MOV", "ADR"):
        ctx.write(0, ctx.read(1) & _mask(ctx.width(0)))
    elif mnemonic == "LDR":
        ctx.write(0, ctx.read(1) & _mask(ctx.width(0)))
    elif mnemonic == "STR":
        ctx.write(1, ctx.read(0) & _mask(ctx.width(0)))
    elif mnemonic == "UDIV":
        _exec_udiv(ctx, state)
    else:
        raise InvalidProgram(f"no semantics for {mnemonic!r}")

    return StepResult(
        instruction=instruction,
        pc=pc,
        next_pc=next_pc,
        mem_accesses=ctx.accesses,
        branch=branch,
    )


# -- compile-once lowering (repro.emulator.compiled) --------------------------
#
# Per-mnemonic compilers mirroring the interpreters above statement for
# statement; see the x86-64 twin for the design notes. Equality of the
# two paths is asserted by tests/test_compiled_ir.py.

_CompileFn = Callable[[Instruction, CompiledOperands, int], Callable]


def _compile_cb(instruction, ops, pc):
    condition = condition_of(instruction.mnemonic)
    evaluator = _condition_evaluator(condition)
    return compile_cond_branch(instruction, ops, pc, condition, evaluator)


def _compile_data_processing(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    width = ops.width(0)
    wm = _mask(width)
    read1 = ops.reader(1)
    read2 = ops.reader(2)
    write0 = ops.writer(0)
    set_flags = mnemonic.endswith("S")

    if mnemonic in ("ADD", "ADDS"):
        def body(state, accesses):
            a = read1(state, accesses) & wm
            b = read2(state, accesses) & wm
            write0(state, _add_with_flags(state, a, b, width, set_flags),
                   accesses)
    elif mnemonic in ("SUB", "SUBS"):
        def body(state, accesses):
            a = read1(state, accesses) & wm
            b = read2(state, accesses) & wm
            write0(state, _sub_with_flags(state, a, b, width, set_flags),
                   accesses)
    elif mnemonic in ("AND", "ANDS"):
        def body(state, accesses):
            result = (read1(state, accesses) & read2(state, accesses)) & wm
            if set_flags:
                _logic_flags(state, result, width)
            write0(state, result, accesses)
    elif mnemonic == "EOR":
        def body(state, accesses):
            result = (
                (read1(state, accesses) & wm)
                ^ (read2(state, accesses) & wm)
            )
            write0(state, result, accesses)
    elif mnemonic == "ORR":
        def body(state, accesses):
            result = (
                (read1(state, accesses) & wm)
                | (read2(state, accesses) & wm)
            )
            write0(state, result, accesses)
    else:  # pragma: no cover - guarded by the dispatch table
        raise InvalidProgram(mnemonic)
    return make_step(instruction, pc, body)


def _compile_compare(instruction, ops, pc):
    is_cmp = instruction.mnemonic == "CMP"
    width = ops.width(0)
    wm = _mask(width)
    read0 = ops.reader(0)
    read1 = ops.reader(1)

    if is_cmp:
        def body(state, accesses):
            a = read0(state, accesses) & wm
            b = read1(state, accesses) & wm
            _sub_with_flags(state, a, b, width, set_flags=True)
    else:  # TST
        def body(state, accesses):
            a = read0(state, accesses) & wm
            b = read1(state, accesses) & wm
            _logic_flags(state, a & b, width)
    return make_step(instruction, pc, body)


def _compile_shift(instruction, ops, pc):
    left = instruction.mnemonic == "LSL"
    width = ops.width(0)
    wm = _mask(width)
    read1 = ops.reader(1)
    read2 = ops.reader(2)
    write0 = ops.writer(0)

    if left:
        def body(state, accesses):
            value = read1(state, accesses) & wm
            amount = read2(state, accesses) % width
            write0(state, (value << amount) & wm, accesses)
    else:  # LSR
        def body(state, accesses):
            value = read1(state, accesses) & wm
            amount = read2(state, accesses) % width
            write0(state, value >> amount, accesses)
    return make_step(instruction, pc, body)


def _compile_move(instruction, ops, pc):
    # MOV/ADR and LDR share one shape: masked read of slot 1 into slot 0.
    wm = _mask(ops.width(0))
    read1 = ops.reader(1)
    write0 = ops.writer(0)

    def body(state, accesses):
        write0(state, read1(state, accesses) & wm, accesses)

    return make_step(instruction, pc, body)


def _compile_str(instruction, ops, pc):
    wm = _mask(ops.width(0))
    read0 = ops.reader(0)
    write1 = ops.writer(1)

    def body(state, accesses):
        write1(state, read0(state, accesses) & wm, accesses)

    return make_step(instruction, pc, body)


def _compile_udiv(instruction, ops, pc):
    wm = _mask(ops.width(0))
    read1 = ops.reader(1)
    read2 = ops.reader(2)
    write0 = ops.writer(0)

    def body(state, accesses):
        dividend = read1(state, accesses) & wm
        divisor = read2(state, accesses) & wm
        # AArch64: division by zero yields zero, no fault.
        write0(state, 0 if divisor == 0 else dividend // divisor, accesses)

    return make_step(instruction, pc, body)


#: control-flow categories, compiled by shape rather than mnemonic
_CATEGORY_COMPILERS: Dict[str, _CompileFn] = {
    "CB": _compile_cb,
    "UNCOND": compile_uncond_branch,
    "IND": compile_indirect_branch,
    "FENCE": compile_no_op,
}

#: the per-mnemonic handler table the program compiler binds from
_COMPILERS: Dict[str, _CompileFn] = {
    "ADD": _compile_data_processing,
    "ADDS": _compile_data_processing,
    "SUB": _compile_data_processing,
    "SUBS": _compile_data_processing,
    "AND": _compile_data_processing,
    "ANDS": _compile_data_processing,
    "EOR": _compile_data_processing,
    "ORR": _compile_data_processing,
    "CMP": _compile_compare,
    "TST": _compile_compare,
    "LSL": _compile_shift,
    "LSR": _compile_shift,
    "MOV": _compile_move,
    "ADR": _compile_move,
    "LDR": _compile_move,
    "STR": _compile_str,
    "UDIV": _compile_udiv,
    "NOP": compile_no_op,
}


def compile_instruction(
    instruction: Instruction,
    pc: int = 0,
    label_to_index=None,
) -> Callable[[ArchState], StepResult]:
    """Lower one AArch64 instruction into a bound step closure
    (byte-identical in behaviour to :func:`execute`)."""
    ops = CompiledOperands(instruction, label_to_index)
    compiler = _CATEGORY_COMPILERS.get(instruction.category)
    if compiler is None:
        compiler = _COMPILERS.get(instruction.mnemonic)
    if compiler is None:
        raise InvalidProgram(f"no semantics for {instruction.mnemonic!r}")
    return compiler(instruction, ops, pc)


# -- dead-flag handler variants (repro.analysis.deadflags) --------------------
#
# Only the S-suffixed forms and CMP/TST touch NZCV on AArch64; when
# liveness proves those writes dead, the variants below perform the
# identical register transitions without the flag algebra. See the
# x86-64 twin for the contract (metadata untouched, installed only by
# the dead-flag pass).


def _compile_data_processing_no_flags(instruction, ops, pc):
    mnemonic = instruction.mnemonic
    wm = _mask(ops.width(0))
    read1 = ops.reader(1)
    read2 = ops.reader(2)
    write0 = ops.writer(0)

    if mnemonic == "ADDS":
        def body(state, accesses):
            write0(
                state,
                ((read1(state, accesses) & wm) + (read2(state, accesses) & wm))
                & wm,
                accesses,
            )
    elif mnemonic == "SUBS":
        def body(state, accesses):
            write0(
                state,
                ((read1(state, accesses) & wm) - (read2(state, accesses) & wm))
                & wm,
                accesses,
            )
    elif mnemonic == "ANDS":
        def body(state, accesses):
            write0(
                state,
                (read1(state, accesses) & read2(state, accesses)) & wm,
                accesses,
            )
    else:  # pragma: no cover - guarded by the dispatch table
        raise InvalidProgram(mnemonic)
    return make_step(instruction, pc, body)


def _compile_compare_no_flags(instruction, ops, pc):
    # CMP/TST only exist to set NZCV; with the flags dead the op is a
    # register-read no-op (neither form has a memory operand to record)
    def body(state, accesses):
        pass

    return make_step(instruction, pc, body)


#: mnemonics with a flag-skipping variant (plain forms write no flags)
_NO_FLAG_COMPILERS: Dict[str, _CompileFn] = {
    "ADDS": _compile_data_processing_no_flags,
    "SUBS": _compile_data_processing_no_flags,
    "ANDS": _compile_data_processing_no_flags,
    "CMP": _compile_compare_no_flags,
    "TST": _compile_compare_no_flags,
}


def compile_instruction_no_flags(
    instruction: Instruction,
    pc: int = 0,
    label_to_index=None,
) -> Optional[Callable[[ArchState], StepResult]]:
    """A handler identical to :func:`compile_instruction`'s except that
    NZCV writes are skipped, or ``None`` when no variant exists."""
    if instruction.category in _CATEGORY_COMPILERS:
        return None
    compiler = _NO_FLAG_COMPILERS.get(instruction.mnemonic)
    if compiler is None:
        return None
    return compiler(instruction, CompiledOperands(instruction, label_to_index), pc)


__all__ = [
    "compile_instruction",
    "compile_instruction_no_flags",
    "evaluate_condition",
    "execute",
]
