"""AArch64 instruction semantics for the reduced catalog.

Semantics follow the Arm ARM for the implemented subset. Notable
divergences from x86 that the contract/CPU layers must not assume away:

- flags (NZCV) are only written by the S-suffixed forms and CMP/TST;
  plain ADD/SUB/AND never touch them;
- the carry flag after a subtraction is the *inverse* of x86's borrow
  convention: ``SUBS`` sets C when no borrow occurred;
- ``UDIV`` never faults — division by zero architecturally yields zero
  (the backend therefore needs no §5.1 division guards).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.isa.instruction import Instruction
from repro.emulator.errors import InvalidProgram
from repro.emulator.semantics import (
    MASK64,
    BranchInfo,
    OperandContext,
    StepResult,
    mask as _mask,
    signed as _signed,
)
from repro.emulator.state import ArchState
from repro.arch.aarch64.instruction_set import condition_of


def _set_nz(state: ArchState, result: int, width: int) -> None:
    state.write_flag("N", bool(result >> (width - 1) & 1))
    state.write_flag("Z", result == 0)


def _add_with_flags(
    state: ArchState, a: int, b: int, width: int, set_flags: bool
) -> int:
    full = a + b
    result = full & _mask(width)
    if set_flags:
        state.write_flag("C", full > _mask(width))
        state.write_flag(
            "V", bool((~(a ^ b) & (a ^ result)) >> (width - 1) & 1)
        )
        _set_nz(state, result, width)
    return result


def _sub_with_flags(
    state: ArchState, a: int, b: int, width: int, set_flags: bool
) -> int:
    full = a - b
    result = full & _mask(width)
    if set_flags:
        # AArch64 convention: C set when NO borrow occurred.
        state.write_flag("C", full >= 0)
        state.write_flag(
            "V", bool(((a ^ b) & (a ^ result)) >> (width - 1) & 1)
        )
        _set_nz(state, result, width)
    return result


def _logic_flags(state: ArchState, result: int, width: int) -> None:
    state.write_flag("C", False)
    state.write_flag("V", False)
    _set_nz(state, result, width)


def evaluate_condition(code: str, state: ArchState) -> bool:
    """Evaluate a canonical AArch64 condition code against NZCV."""
    n = state.read_flag("N")
    z = state.read_flag("Z")
    c = state.read_flag("C")
    v = state.read_flag("V")
    table = {
        "EQ": z,
        "NE": not z,
        "CS": c,
        "CC": not c,
        "MI": n,
        "PL": not n,
        "VS": v,
        "VC": not v,
        "HI": c and not z,
        "LS": not (c and not z),
        "GE": n == v,
        "LT": n != v,
        "GT": (not z) and (n == v),
        "LE": z or (n != v),
    }
    try:
        return table[code]
    except KeyError:
        raise InvalidProgram(f"unknown condition code: {code!r}") from None


_THREE_OP = {"ADD", "SUB", "AND", "EOR", "ORR", "ADDS", "SUBS", "ANDS"}


def _exec_data_processing(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    a = ctx.read(1) & _mask(width)
    b = ctx.read(2) & _mask(width)
    set_flags = mnemonic.endswith("S")
    if mnemonic in ("ADD", "ADDS"):
        result = _add_with_flags(state, a, b, width, set_flags)
    elif mnemonic in ("SUB", "SUBS"):
        result = _sub_with_flags(state, a, b, width, set_flags)
    elif mnemonic in ("AND", "ANDS"):
        result = a & b
        if set_flags:
            _logic_flags(state, result, width)
    elif mnemonic == "EOR":
        result = a ^ b
    elif mnemonic == "ORR":
        result = a | b
    else:  # pragma: no cover - guarded by dispatch
        raise InvalidProgram(mnemonic)
    ctx.write(0, result)


def _exec_compare(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    a = ctx.read(0) & _mask(width)
    b = ctx.read(1) & _mask(width)
    if mnemonic == "CMP":
        _sub_with_flags(state, a, b, width, set_flags=True)
    else:  # TST
        _logic_flags(state, a & b, width)


def _exec_shift(ctx: OperandContext, state: ArchState) -> None:
    mnemonic = ctx.instruction.mnemonic
    width = ctx.width(0)
    value = ctx.read(1) & _mask(width)
    amount = ctx.read(2) % width
    if mnemonic == "LSL":
        result = (value << amount) & _mask(width)
    else:  # LSR
        result = value >> amount
    ctx.write(0, result)


def _exec_udiv(ctx: OperandContext, state: ArchState) -> None:
    width = ctx.width(0)
    dividend = ctx.read(1) & _mask(width)
    divisor = ctx.read(2) & _mask(width)
    # AArch64: division by zero yields zero, no fault.
    quotient = 0 if divisor == 0 else dividend // divisor
    ctx.write(0, quotient)


def execute(
    instruction: Instruction,
    state: ArchState,
    pc: int = 0,
    resolve_label: Optional[Callable[[str], int]] = None,
) -> StepResult:
    """Execute one AArch64 instruction; return its side effects."""
    ctx = OperandContext(instruction, state, resolve_label)
    mnemonic = instruction.mnemonic
    category = instruction.category
    next_pc = pc + 1
    branch: Optional[BranchInfo] = None

    if category == "CB":
        condition = condition_of(mnemonic)
        taken = evaluate_condition(condition, state)
        target = ctx.read(0)
        branch = BranchInfo("cond", taken, target, pc + 1, condition)
        next_pc = target if taken else pc + 1
    elif category == "UNCOND":
        target = ctx.read(0)
        branch = BranchInfo("uncond", True, target, pc + 1)
        next_pc = target
    elif category == "IND":
        target = ctx.read(0) & MASK64
        branch = BranchInfo("indirect", True, target, pc + 1)
        next_pc = target
    elif category == "FENCE" or mnemonic == "NOP":
        pass
    elif mnemonic in _THREE_OP:
        _exec_data_processing(ctx, state)
    elif mnemonic in ("CMP", "TST"):
        _exec_compare(ctx, state)
    elif mnemonic in ("LSL", "LSR"):
        _exec_shift(ctx, state)
    elif mnemonic in ("MOV", "ADR"):
        ctx.write(0, ctx.read(1) & _mask(ctx.width(0)))
    elif mnemonic == "LDR":
        ctx.write(0, ctx.read(1) & _mask(ctx.width(0)))
    elif mnemonic == "STR":
        ctx.write(1, ctx.read(0) & _mask(ctx.width(0)))
    elif mnemonic == "UDIV":
        _exec_udiv(ctx, state)
    else:
        raise InvalidProgram(f"no semantics for {mnemonic!r}")

    return StepResult(
        instruction=instruction,
        pc=pc,
        next_pc=next_pc,
        mem_accesses=ctx.accesses,
        branch=branch,
    )


__all__ = ["evaluate_condition", "execute"]
