"""AArch64-syntax rendering and parsing of test-case programs.

The syntax follows standard Arm assembly for the reduced catalog:

- immediates are ``#``-prefixed (``ADD X1, X2, #8``); the parser also
  accepts bare integers;
- memory operands are ``[base]``, ``[base, Xm]`` (register offset) or
  ``[base, #imm]`` (immediate offset); the access width is taken from
  the data register (``LDR W1, ...`` is a 32-bit load);
- branch targets are ``.label`` block references, as in the x86 backend;
- ``;`` and ``//`` start comments (``#`` cannot: it prefixes immediates).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.isa.instruction import Instruction, InstructionSet, TestCaseProgram
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.assembler import parse_program_with, render_program_with
from repro.arch.aarch64.instruction_set import (
    FULL_INSTRUCTION_SET,
    canonical_mnemonic,
)
from repro.arch.aarch64.registers import VIEWS


def _is_register(name: str) -> bool:
    return name.upper() in VIEWS


def _register_width(name: str) -> int:
    return VIEWS[name.upper()][1]


def _parse_int(text: str) -> Optional[int]:
    text = text.strip().lstrip("#").replace("_", "")
    negative = text.startswith("-")
    if negative:
        text = text[1:].strip()
    try:
        if text.lower().startswith("0x"):
            value = int(text, 16)
        elif text.lower().startswith("0b"):
            value = int(text, 2)
        elif text.isdigit():
            value = int(text)
        else:
            return None
    except ValueError:
        return None
    return -value if negative else value


def _split_operands(text: str) -> List[str]:
    """Split on commas outside brackets (``[X27, X1]`` is one operand)."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def _parse_memory(text: str) -> Tuple[str, Optional[str], int]:
    """Parse ``[base]`` / ``[base, Xm]`` / ``[base, #imm]``."""
    inner = text.strip()[1:-1]
    terms = [t.strip() for t in inner.split(",") if t.strip()]
    if not terms or not _is_register(terms[0]):
        raise ValueError(f"memory operand without base register: {text!r}")
    base = terms[0].upper()
    index: Optional[str] = None
    displacement = 0
    for term in terms[1:]:
        value = _parse_int(term)
        if value is not None:
            displacement += value
        elif _is_register(term):
            if index is not None:
                raise ValueError(f"too many index registers: {text!r}")
            index = term.upper()
        else:
            raise ValueError(f"cannot parse address term: {term!r}")
    return base, index, displacement


def _parse_operand(text: str) -> Operand:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        base, index, displacement = _parse_memory(text)
        # width is fixed up from the data register by parse_instruction
        return MemoryOperand(base, index, displacement, 64)
    if text.startswith("."):
        return LabelOperand(text[1:])
    if _is_register(text):
        return RegisterOperand(text)
    value = _parse_int(text)
    if value is not None:
        return ImmediateOperand(value)
    raise ValueError(f"cannot parse operand: {text!r}")


def _operand_kind(operand: Operand) -> str:
    if isinstance(operand, RegisterOperand):
        return "REG"
    if isinstance(operand, ImmediateOperand):
        return "IMM"
    if isinstance(operand, MemoryOperand):
        return "MEM"
    if isinstance(operand, LabelOperand):
        return "LABEL"
    raise TypeError(f"unknown operand type: {operand!r}")


def parse_instruction(
    line: str, instruction_set: Optional[InstructionSet] = None
) -> Instruction:
    """Parse a single AArch64 instruction line."""
    instruction_set = instruction_set or FULL_INSTRUCTION_SET
    text = line.strip()
    parts = text.split(None, 1)
    mnemonic = canonical_mnemonic(parts[0])
    operand_texts = _split_operands(parts[1]) if len(parts) > 1 else []
    operands = [_parse_operand(t) for t in operand_texts]
    # LDR/STR access width comes from the data register (X -> 64, W -> 32)
    width: Optional[int] = None
    if operands and isinstance(operands[0], RegisterOperand):
        width = _register_width(operands[0].name)
    if width is not None:
        operands = [
            MemoryOperand(op.base, op.index, op.displacement, width)
            if isinstance(op, MemoryOperand)
            else op
            for op in operands
        ]
    kinds = tuple(_operand_kind(op) for op in operands)
    spec = instruction_set.find(mnemonic, kinds, width)
    return Instruction(spec, tuple(operands))


def render_instruction(instruction: Instruction) -> str:
    """Render one instruction in AArch64 syntax."""
    parts: List[str] = []
    for operand in instruction.operands:
        if isinstance(operand, RegisterOperand):
            parts.append(operand.name)
        elif isinstance(operand, ImmediateOperand):
            parts.append(f"#{operand.value}")
        elif isinstance(operand, LabelOperand):
            parts.append(f".{operand.name}")
        elif isinstance(operand, MemoryOperand):
            terms = [operand.base]
            if operand.index is not None:
                terms.append(operand.index)
            if operand.displacement:
                terms.append(f"#{operand.displacement}")
            parts.append(f"[{', '.join(terms)}]")
        else:
            parts.append(str(operand))
    text = instruction.mnemonic
    if parts:
        text += " " + ", ".join(parts)
    return text


def render_program(program: TestCaseProgram, numbered: bool = False) -> str:
    """Render a program block-by-block in AArch64 syntax."""
    return render_program_with(program, render_instruction, numbered)


def parse_program(
    text: str,
    name: str = "testcase",
    instruction_set: Optional[InstructionSet] = None,
) -> TestCaseProgram:
    """Parse a multi-line AArch64 program."""
    # strip // comments first; '#' cannot be a comment char here because
    # it prefixes immediates
    text = re.sub(r"//[^\n]*", "", text)
    return parse_program_with(
        text,
        name,
        lambda line: parse_instruction(line, instruction_set),
        comment_chars=";",
    )


__all__ = [
    "parse_instruction",
    "parse_program",
    "render_instruction",
    "render_program",
]
