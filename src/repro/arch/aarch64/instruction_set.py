"""AArch64 instruction catalog: a reduced but real subset.

The catalog mirrors the paper's ISA-subset structure (§6.1) on AArch64:

- ``AR``  — three-operand register arithmetic/logic (ADD/SUB/AND/EOR/ORR,
  LSL/LSR by immediate, MOV), plus the NZCV-setting forms
  (ADDS/SUBS/ANDS, CMP/TST) that feed conditional branches;
- ``MEM`` — LDR/STR with base+register and base+immediate addressing;
- ``VAR`` — UDIV, the variable-latency instruction (AArch64 division
  never faults: division by zero yields zero);
- ``CB``  — ``B.cond`` over the NZCV condition codes, plus direct ``B``;
- ``IND`` — ``BR`` (indirect branch) and ADR (materialize a code label);
- ``FENCE`` — DSB and ISB, the architecture's serializing barriers.

Immediate widths are generous simplifications (12-bit arithmetic
immediates, 16-bit logical immediates) rather than the real bitmask
encoding — this backend drives an emulator, not an encoder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import (
    InstructionSet,
    InstructionSpec,
    OperandTemplate,
)

#: AArch64 condition codes implemented (AL/NV excluded: never generated).
CONDITION_CODES: Tuple[str, ...] = (
    "EQ",
    "NE",
    "CS",
    "CC",
    "MI",
    "PL",
    "VS",
    "VC",
    "HI",
    "LS",
    "GE",
    "LT",
    "GT",
    "LE",
)

#: Flags read by each condition code.
CONDITION_FLAGS: Dict[str, Tuple[str, ...]] = {
    "EQ": ("Z",),
    "NE": ("Z",),
    "CS": ("C",),
    "CC": ("C",),
    "MI": ("N",),
    "PL": ("N",),
    "VS": ("V",),
    "VC": ("V",),
    "HI": ("C", "Z"),
    "LS": ("C", "Z"),
    "GE": ("N", "V"),
    "LT": ("N", "V"),
    "GT": ("Z", "N", "V"),
    "LE": ("Z", "N", "V"),
}

#: Aliases accepted by the parser (canonical code on the right).
CONDITION_ALIASES: Dict[str, str] = {"HS": "CS", "LO": "CC"}

NZCV = ("N", "Z", "C", "V")

WIDTHS = (32, 64)

_REG = lambda width, src=True, dest=False: OperandTemplate("REG", width, src, dest)
_IMM = lambda width: OperandTemplate("IMM", width, True, False)
_MEM = lambda width, src=True, dest=False: OperandTemplate("MEM", width, src, dest)
_LABEL = OperandTemplate("LABEL", 0, True, False)

#: arithmetic immediates are 12-bit; logical immediates get 16 bits so the
#: sandbox masks (up to 0b1111111000000 for two pages) stay representable
_ARITH_IMM = 12
_LOGIC_IMM = 16


def _data_processing_specs() -> List[InstructionSpec]:
    specs: List[InstructionSpec] = []
    table = [
        ("ADD", (), _ARITH_IMM),
        ("SUB", (), _ARITH_IMM),
        ("AND", (), _LOGIC_IMM),
        ("EOR", (), _LOGIC_IMM),
        ("ORR", (), _LOGIC_IMM),
        ("ADDS", NZCV, _ARITH_IMM),
        ("SUBS", NZCV, _ARITH_IMM),
        ("ANDS", NZCV, _LOGIC_IMM),
    ]
    for mnemonic, writes, imm_width in table:
        for width in WIDTHS:
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width, src=False, dest=True), _REG(width), _REG(width)),
                    "AR",
                    flags_written=writes,
                )
            )
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (
                        _REG(width, src=False, dest=True),
                        _REG(width),
                        _IMM(imm_width),
                    ),
                    "AR",
                    flags_written=writes,
                )
            )
    # compare forms (discarded destination)
    for mnemonic, imm_width in (("CMP", _ARITH_IMM), ("TST", _LOGIC_IMM)):
        for width in WIDTHS:
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width), _REG(width)),
                    "AR",
                    flags_written=NZCV,
                )
            )
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width), _IMM(imm_width)),
                    "AR",
                    flags_written=NZCV,
                )
            )
    # shifts by immediate
    for mnemonic in ("LSL", "LSR"):
        for width in WIDTHS:
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width, src=False, dest=True), _REG(width), _IMM(6)),
                    "AR",
                )
            )
    # moves
    for width in WIDTHS:
        specs.append(
            InstructionSpec(
                "MOV", (_REG(width, src=False, dest=True), _REG(width)), "AR"
            )
        )
        specs.append(
            InstructionSpec(
                "MOV", (_REG(width, src=False, dest=True), _IMM(16)), "AR"
            )
        )
    specs.append(InstructionSpec("NOP", (), "AR"))
    return specs


def _memory_specs() -> List[InstructionSpec]:
    specs: List[InstructionSpec] = []
    for width in WIDTHS:
        specs.append(
            InstructionSpec(
                "LDR",
                (_REG(width, src=False, dest=True), _MEM(width)),
                "MEM",
            )
        )
        specs.append(
            InstructionSpec(
                "STR",
                (_REG(width), _MEM(width, src=False, dest=True)),
                "MEM",
            )
        )
    return specs


def _division_specs() -> List[InstructionSpec]:
    """UDIV: variable-latency, unfaultable (x/0 == 0 on AArch64)."""
    return [
        InstructionSpec(
            "UDIV",
            (_REG(width, src=False, dest=True), _REG(width), _REG(width)),
            "VAR",
        )
        for width in WIDTHS
    ]


def _branch_specs() -> List[InstructionSpec]:
    specs: List[InstructionSpec] = []
    for code in CONDITION_CODES:
        specs.append(
            InstructionSpec(
                f"B.{code}", (_LABEL,), "CB", flags_read=CONDITION_FLAGS[code]
            )
        )
    specs.append(InstructionSpec("B", (_LABEL,), "UNCOND"))
    specs.append(InstructionSpec("BR", (_REG(64),), "IND"))
    # ADR materializes a code location (gadget helper for BR)
    specs.append(
        InstructionSpec("ADR", (_REG(64, src=False, dest=True), _LABEL), "AR")
    )
    return specs


def _fence_specs() -> List[InstructionSpec]:
    return [
        InstructionSpec("DSB", (), "FENCE"),
        InstructionSpec("ISB", (), "FENCE"),
    ]


def _build_catalog() -> List[InstructionSpec]:
    catalog: List[InstructionSpec] = []
    catalog.extend(_data_processing_specs())
    catalog.extend(_memory_specs())
    catalog.extend(_division_specs())
    catalog.extend(_branch_specs())
    catalog.extend(_fence_specs())
    return catalog


FULL_INSTRUCTION_SET = InstructionSet(_build_catalog())

SUBSET_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "AR": ("AR",),
    "MEM": ("MEM",),
    "VAR": ("VAR",),
    "CB": ("CB", "UNCOND"),
    "IND": ("IND",),
    "FENCE": ("FENCE",),
}


def canonical_condition(code: str) -> str:
    """Normalize a condition code (``HS`` -> ``CS``)."""
    code = code.upper()
    if code in CONDITION_FLAGS:
        return code
    if code in CONDITION_ALIASES:
        return CONDITION_ALIASES[code]
    raise ValueError(f"unknown condition code: {code!r}")


def canonical_mnemonic(mnemonic: str) -> str:
    """Normalize condition aliases in mnemonics (``B.HS`` -> ``B.CS``)."""
    mnemonic = mnemonic.upper()
    if mnemonic.startswith("B."):
        return "B." + canonical_condition(mnemonic[2:])
    return mnemonic


#: ``B.cond -> canonical code`` for every code and alias, precomputed at
#: import (the per-call canonicalization was hot-loop overhead).
_CONDITION_OF: Dict[str, Optional[str]] = {
    "B." + code: canonical_condition(code)
    for code in (*CONDITION_FLAGS, *CONDITION_ALIASES)
}


def condition_of(mnemonic: str) -> Optional[str]:
    """Extract the condition code from a ``B.cond`` mnemonic (memoized
    at module import)."""
    mnemonic = mnemonic.upper()
    try:
        return _CONDITION_OF[mnemonic]
    except KeyError:
        pass
    result: Optional[str] = None
    if mnemonic.startswith("B."):
        try:
            result = canonical_condition(mnemonic[2:])
        except ValueError:
            result = None
    _CONDITION_OF[mnemonic] = result
    return result


__all__ = [
    "CONDITION_ALIASES",
    "CONDITION_CODES",
    "CONDITION_FLAGS",
    "FULL_INSTRUCTION_SET",
    "NZCV",
    "SUBSET_CATEGORIES",
    "canonical_condition",
    "canonical_mnemonic",
    "condition_of",
]
