"""AArch64 register file for the reduced backend.

Canonical registers are the 64-bit GPRs ``X0``-``X30``; ``W0``-``W30``
are their 32-bit views (writes zero-extend, as on real silicon — the
same rule :class:`~repro.emulator.state.ArchState` applies to x86 32-bit
views). The NZCV condition flags are modelled as four independent
boolean bits.

``X27`` is reserved as the sandbox base pointer — the AArch64 analogue
of the paper's R14 convention (high callee-saved register, never part of
the generator's pool). The backend's catalog has no stack operations, so
no stack register is reserved.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Canonical 64-bit general-purpose registers.
GPR_NAMES: Tuple[str, ...] = tuple(f"X{i}" for i in range(31))

#: The register that always holds the sandbox base address.
SANDBOX_BASE_REGISTER = "X27"

#: NZCV condition flags.
FLAG_BITS: Tuple[str, ...] = ("N", "Z", "C", "V")

#: view name -> (canonical register, width in bits)
VIEWS: Dict[str, Tuple[str, int]] = {}
for _i in range(31):
    VIEWS[f"X{_i}"] = (f"X{_i}", 64)
    VIEWS[f"W{_i}"] = (f"X{_i}", 32)


def view_name(canonical: str, width: int) -> str:
    """The conventional name of the ``width``-bit view of a register.

    >>> view_name("X3", 32)
    'W3'
    """
    canonical = canonical.upper()
    if canonical not in GPR_NAMES:
        raise ValueError(f"not a canonical register: {canonical!r}")
    if width == 64:
        return canonical
    if width == 32:
        return "W" + canonical[1:]
    raise ValueError(f"unsupported register width: {width}")


__all__ = [
    "FLAG_BITS",
    "GPR_NAMES",
    "SANDBOX_BASE_REGISTER",
    "VIEWS",
    "view_name",
]
