"""Architecture backends and their registry.

The pipeline is retargetable: every layer consumes an
:class:`~repro.arch.base.Architecture` descriptor — register file,
instruction catalog, condition codes, semantics, serializing-fence set,
sandbox convention and assembler syntax — instead of module-level ISA
constants. Backends register themselves here; the built-in ones are
``x86_64`` (the default everywhere) and ``aarch64``.

    from repro.arch import get_architecture

    arch = get_architecture("aarch64")
    program = arch.parse_program("LDR X1, [X27, X2]")

Registering a backend also contributes its register views to the global
name registry in :mod:`repro.isa.registers`, so operands of any
registered architecture validate. See ``docs/architectures.md`` for the
contract a new backend must satisfy.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.arch.base import Architecture, RegisterFile
from repro.isa.registers import register_views

_REGISTRY: Dict[str, Architecture] = {}


def register_architecture(architecture: Architecture) -> Architecture:
    """Register a backend by its ``name`` (idempotent; later wins)."""
    if not architecture.name:
        raise ValueError("architecture must have a name")
    _REGISTRY[architecture.name.lower()] = architecture
    register_views(architecture.registers.views)
    return architecture


def get_architecture(name: str = "x86_64") -> Architecture:
    """Look up a registered architecture backend by name.

    >>> get_architecture("x86_64").registers.sandbox_base_register
    'R14'
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; available: "
            f"{', '.join(architecture_names())}"
        ) from None


def architecture_names() -> Tuple[str, ...]:
    """Names of all registered architectures, sorted."""
    return tuple(sorted(_REGISTRY))


# -- built-in backends --------------------------------------------------------

from repro.arch import x86_64 as _x86_64  # noqa: E402
from repro.arch import aarch64 as _aarch64  # noqa: E402

register_architecture(_x86_64.ARCHITECTURE)
register_architecture(_aarch64.ARCHITECTURE)

__all__ = [
    "Architecture",
    "RegisterFile",
    "architecture_names",
    "get_architecture",
    "register_architecture",
]
