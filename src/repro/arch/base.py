"""The architecture descriptor: everything the pipeline needs per ISA.

The MRT pipeline (paper §4) is architecture-agnostic: it needs *some*
register file, *some* instruction catalog split into the tested subsets,
*some* way to execute one instruction and to close a speculation window.
An :class:`Architecture` bundles exactly those ingredients:

- a :class:`RegisterFile` (canonical registers, narrower views, flag
  bits, the sandbox-base and stack conventions);
- an instruction catalog (:class:`~repro.isa.instruction_set.InstructionSet`)
  tagged with the paper's ISA-subset categories (AR/MEM/VAR/CB/IND/...);
- the condition-code table and its flag dependencies;
- a semantics entry point (``execute``) mapping one instruction to a
  :class:`~repro.emulator.semantics.StepResult`;
- the *serializing instruction* set — the instructions that close a
  speculation window (x86: LFENCE/MFENCE; aarch64: DSB/ISB). Fence
  semantics differ per ISA, so contracts and the postprocessor consult
  this set instead of hard-coding a mnemonic;
- assembler syntax (parse/render) so programs round-trip through text;
- generator hooks (address-masking instrumentation, division guards)
  that encode the per-ISA fault-avoidance idioms of §5.1.

Concrete backends subclass :class:`Architecture` and register an
instance with :func:`repro.arch.register_architecture`; the pipeline
resolves them by name through :func:`repro.arch.get_architecture`.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.isa.instruction import Instruction, InstructionSet, TestCaseProgram


class RegisterFile:
    """Register-file description of one architecture.

    ``views`` maps every accepted register name to its canonical backing
    register and width in bits, e.g. ``{"EAX": ("RAX", 32)}`` or
    ``{"W3": ("X3", 32)}``. Writes to sub-64-bit views follow the shared
    model implemented by :class:`~repro.emulator.state.ArchState`: 32-bit
    writes zero-extend into the canonical register (x86-64 and AArch64
    agree on this), narrower writes merge.
    """

    def __init__(
        self,
        gpr_names: Tuple[str, ...],
        flag_bits: Tuple[str, ...],
        views: Mapping[str, Tuple[str, int]],
        sandbox_base_register: str,
        stack_register: Optional[str] = None,
        view_name_fn: Optional[Callable[[str, int], str]] = None,
    ):
        self.gpr_names = tuple(gpr_names)
        self.flag_bits = tuple(flag_bits)
        self.views: Dict[str, Tuple[str, int]] = dict(views)
        self.sandbox_base_register = sandbox_base_register
        self.stack_register = stack_register
        self._view_name_fn = view_name_fn

    def canonical(self, name: str) -> str:
        """The canonical register backing view ``name``."""
        try:
            return self.views[name.upper()][0]
        except KeyError:
            raise ValueError(f"unknown register: {name!r}") from None

    def width(self, name: str) -> int:
        """Width in bits of register view ``name``."""
        try:
            return self.views[name.upper()][1]
        except KeyError:
            raise ValueError(f"unknown register: {name!r}") from None

    def is_register(self, name: str) -> bool:
        return name.upper() in self.views

    def view_name(self, canonical: str, width: int) -> str:
        """The conventional name of the ``width``-bit view of a register."""
        if self._view_name_fn is not None:
            return self._view_name_fn(canonical, width)
        canonical = canonical.upper()
        for name, (backing, view_width) in self.views.items():
            if backing == canonical and view_width == width:
                return name
        raise ValueError(f"no {width}-bit view of {canonical!r}")


class Architecture:
    """Base class of ISA backends. Subclasses fill in the declarative
    attributes and implement the per-ISA methods; the shared helpers at
    the bottom derive everything else."""

    #: registry name, e.g. ``"x86_64"``
    name: str = ""
    registers: RegisterFile
    #: the full instruction catalog
    instruction_set: InstructionSet
    #: subset name -> catalog categories, e.g. ``{"CB": ("CB", "UNCOND")}``
    subset_categories: Mapping[str, Tuple[str, ...]] = {}
    #: canonical condition codes, in the order the generator samples them
    condition_codes: Tuple[str, ...] = ()
    #: condition code -> flag bits it reads
    condition_flags: Mapping[str, Tuple[str, ...]] = {}
    #: mnemonics that close a speculation window (contract + postprocessor)
    serializing_instructions: FrozenSet[str] = frozenset()
    #: the fence the postprocessor inserts during §5.7 stage 3
    fence_mnemonic: str = ""
    #: mnemonics billed at the CPU model's multiply latency
    multiply_mnemonics: FrozenSet[str] = frozenset()
    #: registers the generator and input generator use by default (§5.1:
    #: a small pool raises input effectiveness)
    default_register_pool: Tuple[str, ...] = ()

    # -- per-ISA methods ----------------------------------------------------

    def execute(self, instruction, state, pc=0, resolve_label=None):
        """Execute one instruction architecturally (see per-arch semantics)."""
        raise NotImplementedError

    def compile_instruction(self, instruction, pc=0, label_to_index=None):
        """Lower one instruction into a bound step closure.

        The closure (``run(state) -> StepResult``) must be byte-identical
        in behaviour to :meth:`execute` for this instruction at this
        ``pc``: the backend resolves the mnemonic dispatch, operand
        accessors, condition codes and label targets here, exactly once,
        so the execution engines can run compile-once/execute-many (see
        :mod:`repro.emulator.compiled`).
        """
        raise NotImplementedError

    def compile_instruction_no_flags(
        self, instruction, pc=0, label_to_index=None
    ):
        """Like :meth:`compile_instruction` but skipping flag writes.

        Returns ``None`` when the backend has no flag-skipping variant
        for this instruction. Only the dead-flag elimination pass
        (:mod:`repro.analysis.deadflags`) may install the returned
        closure, and only after liveness proves every flag the
        instruction writes dead on every path — register and memory
        effects must still be byte-identical to :meth:`execute`.
        """
        return None

    def evaluate_condition(self, code: str, state) -> bool:
        """Evaluate a canonical condition code against the flag bits."""
        raise NotImplementedError

    def condition_of(self, mnemonic: str) -> Optional[str]:
        """Extract the canonical condition code from a mnemonic, if any."""
        raise NotImplementedError

    def parse_program(
        self, text: str, name: str = "testcase", instruction_set=None
    ) -> TestCaseProgram:
        """Parse assembly text in this architecture's syntax."""
        raise NotImplementedError

    def render_instruction(self, instruction: Instruction) -> str:
        """Render one instruction in this architecture's syntax."""
        raise NotImplementedError

    def render_program(
        self, program: TestCaseProgram, numbered: bool = False
    ) -> str:
        """Render a program block-by-block, Figure 3 style."""
        from repro.isa.assembler import render_program_with

        return render_program_with(program, self.render_instruction, numbered)

    def cond_branch_mnemonic(self, code: str) -> str:
        """The conditional-branch mnemonic for a condition code."""
        raise NotImplementedError

    #: the unconditional direct-branch mnemonic ("JMP" / "B")
    uncond_branch_mnemonic: str = ""

    # -- generator hooks (§5.1 instrumentation) -----------------------------

    def address_instrumentation(
        self, index_register: str, mask: int, offset: int
    ) -> Tuple[List[Instruction], int]:
        """Instructions confining ``index_register`` to the sandbox, plus
        the displacement the memory operand should carry.

        x86 folds the per-test-case offset into the operand displacement;
        AArch64 addressing has no base+index+displacement form, so its
        backend adds the offset to the index register instead.
        """
        raise NotImplementedError

    def division_guards(self, instruction: Instruction) -> List[Instruction]:
        """Instrumentation preventing division faults (empty when the ISA's
        division cannot fault, as on AArch64)."""
        return []

    def division_register_pool(self, pool: Sequence[str]) -> List[str]:
        """Registers eligible as division operands (x86 excludes RDX)."""
        return list(pool)

    def division_latency_value(self, state, instruction: Instruction) -> int:
        """The value whose magnitude drives variable division latency in
        the CPU model (the quotient location differs per ISA)."""
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    def is_serializing(self, instruction: Instruction) -> bool:
        """True when this instruction closes a speculation window."""
        return instruction.mnemonic in self.serializing_instructions

    def fence_instruction(self) -> Instruction:
        """A fresh instance of the postprocessor's fence."""
        return Instruction(
            self.instruction_set.find(self.fence_mnemonic, ()), ()
        )

    def subset_names(self) -> Tuple[str, ...]:
        return tuple(self.subset_categories)

    def instruction_subset(self, names) -> InstructionSet:
        """Build an instruction set from subset names, e.g. ``["AR", "MEM"]``."""
        categories: List[str] = []
        for name in names:
            try:
                categories.extend(self.subset_categories[name.upper()])
            except KeyError:
                raise ValueError(
                    f"unknown subset {name!r}; expected one of "
                    f"{self.subset_names()}"
                ) from None
        return InstructionSet(self.instruction_set.by_category(*categories))

    def parse_subset_expression(self, expression: str) -> InstructionSet:
        """Parse a ``"AR+MEM+CB"``-style expression into an instruction set."""
        return self.instruction_subset(expression.split("+"))

    def __repr__(self) -> str:
        return f"<Architecture {self.name}>"


__all__ = ["Architecture", "RegisterFile"]
