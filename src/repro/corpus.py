"""Replayable counterexample corpus: violations as regression tests.

The paper's central claim is that a contract violation is *reproducible
evidence* (Table 3 grids, Table 4 detection times) — yet a violation
that dies with the fuzzing process proves nothing to the next run.
:class:`CounterexampleCorpus` persists every confirmed (and every
minimized) violation as a self-contained JSON record: the program text,
the exact input battery, the target coordinates (arch, contract, cpu,
executor and analyzer modes), the campaign seed, and the expected
verdict — a content digest of the detection evidence. Replaying the
corpus re-runs each record through the full testing pipeline and checks
that the violation is re-detected *byte-identically*, which turns the
corpus into a fast deterministic regression gate for detection power
(the spirit of sca-fuzzer-arm64's bats suite of pinned leak
measurements).

Storage discipline mirrors :class:`~repro.core.trace_cache
.PersistentTraceCache`:

- one record per file, named by a prefix of the violation digest — so a
  duplicate find (same evidence) lands on the same file name and
  deduplicates structurally;
- records are written to a temp file and published with an atomic
  ``os.replace``, so concurrent shard workers and sweep cells can
  append to one corpus directory without ever exposing a torn record;
- every record carries a schema version (:data:`FORMAT`); a record
  with an unknown version, torn bytes, or missing keys degrades to a
  SKIP verdict at load/replay time — never to a crash of the gate.

Replay verdicts (:class:`ReplayResult`):

- ``PASS``    — the violation was re-detected and its digest matches;
- ``CHANGED`` — a violation was re-detected, but the evidence (trace
  content, differing positions) no longer matches the record;
- ``FAIL``    — the pipeline no longer detects any violation: a
  detection-power regression;
- ``SKIP``    — the record could not be loaded (corrupt file, foreign
  schema version) or targets an unregistered arch/contract/cpu.

``python -m repro replay --corpus DIR`` drives this as a CLI gate:
exit 1 on any FAIL/CHANGED, and with ``--strict`` also on any SKIP or
an empty corpus. :meth:`ReplayReport.report_digest` is a canonical
digest over the per-entry outcomes, byte-identical across the
``compile_programs`` / ``battery_eval`` / pass-pipeline knobs — the
corpus is the fixed external artifact that pins those engines'
byte-identical contracts between releases.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.emulator.errors import EmulationError
from repro.emulator.state import InputData
from repro.core.config import FuzzerConfig
from repro.core.violation import Violation

#: schema version of stored records; bump on layout changes. A record
#: with any other version is SKIPped by the loader, never guessed at.
FORMAT = 1

#: replay verdicts, in decreasing order of health
PASS = "PASS"
CHANGED = "CHANGED"
FAIL = "FAIL"
SKIP = "SKIP"


# -- input (de)serialization ------------------------------------------------------


def encode_input(input_data: InputData) -> Dict[str, object]:
    """One :class:`InputData` as a JSON-safe dict.

    Registers and flags are plain maps; the sandbox image (mostly-zero
    pages) is zlib-compressed and base64-armored. The encoding is a
    container format only — digests are computed over the *decoded*
    content, so a future zlib producing different bytes can never flip
    a verdict.
    """
    return {
        "registers": {name: value for name, value in
                      sorted(input_data.registers.items())},
        "flags": {name: bool(value) for name, value in
                  sorted(input_data.flags.items())},
        "memory": base64.b64encode(
            zlib.compress(input_data.memory)
        ).decode("ascii"),
        "seed": input_data.seed,
    }


def decode_input(payload: Mapping[str, object]) -> InputData:
    """Inverse of :func:`encode_input`."""
    return InputData(
        registers={str(name): int(value)
                   for name, value in payload["registers"].items()},
        flags={str(name): bool(value)
               for name, value in payload["flags"].items()},
        memory=zlib.decompress(base64.b64decode(payload["memory"])),
        seed=None if payload.get("seed") is None else int(payload["seed"]),
    )


# -- the violation digest ---------------------------------------------------------


def violation_digest(
    violation: Violation,
    executor_mode: str,
    analyzer_mode: str,
) -> str:
    """Content digest of one violation's detection evidence.

    Covers the target coordinates and the relational counterexample
    itself — the shared contract trace, the two differing hardware
    traces, and the positions of the differing inputs within the
    battery. Deliberately *excludes* the program text (the record
    stores it separately; digesting the rendering would couple the
    verdict to assembler formatting) and every wall-clock or
    scheduling-dependent counter. Contract traces and hardware traces
    are byte-identical across the compiled/interpretive/battery
    engines and the IR pass pipeline, so this digest is too — replay
    compares it across those knobs as an end-to-end determinism check.
    """
    evidence = {
        "arch": violation.arch_name,
        "contract": violation.contract_name,
        "cpu": violation.cpu_name,
        "executor_mode": executor_mode,
        "analyzer_mode": analyzer_mode,
        "positions": [violation.position_a, violation.position_b],
        "ctrace": [[tag, value] for tag, value in violation.ctrace],
        "htrace_a": violation.htrace_a.bitmap(),
        "htrace_b": violation.htrace_b.bitmap(),
    }
    canonical = json.dumps(evidence, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


# -- records ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusRecord:
    """One persisted counterexample: everything replay needs, inline."""

    #: target coordinates
    arch: str
    contract: str
    cpu: str
    executor_mode: str
    analyzer_mode: str
    #: rendered program text in the backend's assembly syntax
    program_text: str
    #: the exact input battery the violation was found in
    inputs: Sequence[InputData]
    #: campaign seed of the run that found the violation
    seed: int = 0
    #: human label (gadget or campaign name); also the default entry name
    name: str = ""
    #: expected verdict: "violation" is the only supported value today;
    #: the field exists so future records can pin *non*-violations
    #: (compliance regressions) under the same schema
    expected_verdict: str = "violation"
    #: digest of the expected detection evidence (:func:`violation_digest`)
    expected_digest: str = ""
    #: classification the original detection reported (diagnostic only —
    #: replay compares digests, not names)
    classification: str = ""
    #: whether the recorded detection survived the §5.3/§5.4 confirmation
    #: filters; replay applies the same confirmation level
    confirmed: bool = True
    #: free-form provenance (found_by, minimization counts, …); never
    #: part of the digest
    provenance: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "name": self.name,
            "arch": self.arch,
            "contract": self.contract,
            "cpu": self.cpu,
            "executor_mode": self.executor_mode,
            "analyzer_mode": self.analyzer_mode,
            "seed": self.seed,
            "program": self.program_text,
            "inputs": [encode_input(data) for data in self.inputs],
            "expected": {
                "verdict": self.expected_verdict,
                "digest": self.expected_digest,
                "classification": self.classification,
                "confirmed": self.confirmed,
            },
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "CorpusRecord":
        """Parse one record payload; raises on any shape problem (the
        corpus loader converts that into a SKIP entry)."""
        version = payload.get("format")
        if version != FORMAT:
            raise ValueError(
                f"unsupported corpus record format {version!r} "
                f"(this build reads format {FORMAT})"
            )
        expected = payload["expected"]
        return cls(
            arch=str(payload["arch"]),
            contract=str(payload["contract"]),
            cpu=str(payload["cpu"]),
            executor_mode=str(payload["executor_mode"]),
            analyzer_mode=str(payload["analyzer_mode"]),
            program_text=str(payload["program"]),
            inputs=tuple(decode_input(item) for item in payload["inputs"]),
            seed=int(payload.get("seed", 0)),
            name=str(payload.get("name", "")),
            expected_verdict=str(expected["verdict"]),
            expected_digest=str(expected["digest"]),
            classification=str(expected.get("classification", "")),
            confirmed=bool(expected.get("confirmed", True)),
            provenance=dict(payload.get("provenance", {})),
        )


def record_from_violation(
    violation: Violation,
    config: FuzzerConfig,
    name: str = "",
    provenance: Optional[Mapping[str, object]] = None,
    confirmed: Optional[bool] = None,
) -> CorpusRecord:
    """Build a corpus record from a confirmed :class:`Violation`.

    The program is rendered through its architecture's assembler (the
    same text :meth:`Violation.describe` shows), the full input battery
    is captured — positions in the digest index into it — and the
    digest pins the detection evidence. ``confirmed`` overrides the
    recorded confirmation level (the postprocessor shrinks with
    ``confirm=False`` by default, and its minimized counterexamples
    must replay at the level they were validated at).
    """
    from repro.arch import get_architecture

    if confirmed is None:
        confirmed = config.verify_with_priming or config.revalidate_with_nesting
    arch = get_architecture(violation.arch_name)
    # replay coordinates come from the *config* (registry keys a fresh
    # FuzzerConfig accepts), not the violation, whose contract/cpu
    # names are descriptive labels (e.g. "skylake+ssbd" for the
    # skylake-v4-patched preset); the digest, by contrast, is computed
    # from the violation both at record and at replay time, so the
    # descriptive names stay self-consistent there
    return CorpusRecord(
        arch=config.arch,
        contract=config.contract_name,
        cpu=config.cpu_preset,
        executor_mode=config.executor_mode,
        analyzer_mode=config.analyzer_mode,
        program_text=arch.render_program(violation.program),
        inputs=tuple(violation.input_sequence),
        seed=config.seed,
        name=name or violation.program.name or violation.classification,
        expected_digest=violation_digest(
            violation, config.executor_mode, config.analyzer_mode
        ),
        classification=violation.classification,
        confirmed=confirmed,
        provenance=dict(provenance or {}),
    )


# -- the corpus directory ---------------------------------------------------------


@dataclass
class CorpusEntry:
    """One on-disk record, loaded — or the reason it could not be."""

    path: str
    record: Optional[CorpusRecord] = None
    skip_reason: Optional[str] = None

    @property
    def name(self) -> str:
        if self.record is not None and self.record.name:
            return self.record.name
        return os.path.basename(self.path)


@dataclass
class ReplayResult:
    """Outcome of replaying one corpus entry."""

    entry: CorpusEntry
    verdict: str
    #: digest of the re-detected violation (None on FAIL/SKIP)
    observed_digest: Optional[str] = None
    #: classification of the re-detected violation (diagnostic)
    observed_classification: Optional[str] = None
    #: wall-clock seconds of the re-detection (the per-entry Table 4
    #: trend number; scheduling-dependent, excluded from digests)
    seconds: float = 0.0
    #: inputs replayed for this entry
    inputs: int = 0
    detail: str = ""

    @property
    def name(self) -> str:
        return self.entry.name


@dataclass
class ReplayReport:
    """Merged outcome of replaying a whole corpus."""

    corpus_dir: str
    results: List[ReplayResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    def count(self, verdict: str) -> int:
        return sum(1 for result in self.results if result.verdict == verdict)

    @property
    def passed(self) -> int:
        return self.count(PASS)

    @property
    def ok(self) -> bool:
        """No FAIL/CHANGED — the non-strict gate."""
        return self.count(FAIL) == 0 and self.count(CHANGED) == 0

    def strict_ok(self) -> bool:
        """Every entry replayed PASS and the corpus was non-empty."""
        return bool(self.results) and self.passed == len(self.results)

    def report_digest(self) -> str:
        """Canonical digest over the deterministic per-entry outcomes.

        Sorted by entry file name; covers verdicts and observed
        violation digests, never wall-clock. Byte-identical across the
        compiled/interpretive/battery/pass-pipeline knobs — the
        cross-knob determinism tests compare exactly this string.
        """
        canonical = json.dumps(
            sorted(
                [
                    {
                        "file": os.path.basename(result.entry.path),
                        "verdict": result.verdict,
                        "digest": result.observed_digest,
                    }
                    for result in self.results
                ],
                key=lambda outcome: str(outcome["file"]),
            ),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        return (
            f"{self.passed}/{len(self.results)} PASS, "
            f"{self.count(CHANGED)} CHANGED, {self.count(FAIL)} FAIL, "
            f"{self.count(SKIP)} SKIP in {self.wall_seconds:.2f}s "
            f"(digest {self.report_digest()[:12]})"
        )

    def to_json(self) -> Dict[str, object]:
        """The ``corpus_replay`` benchmark-artifact section
        (schema-checked by ``tools/check_bench_json.py``)."""
        return {
            "corpus": self.corpus_dir,
            "entries": len(self.results),
            "passed": self.passed,
            "changed": self.count(CHANGED),
            "failed": self.count(FAIL),
            "skipped": self.count(SKIP),
            "report_digest": self.report_digest(),
            "detection": [
                {
                    "name": result.name,
                    "file": os.path.basename(result.entry.path),
                    "arch": (
                        result.entry.record.arch
                        if result.entry.record
                        else None
                    ),
                    "contract": (
                        result.entry.record.contract
                        if result.entry.record
                        else None
                    ),
                    "cpu": (
                        result.entry.record.cpu
                        if result.entry.record
                        else None
                    ),
                    "verdict": result.verdict,
                    "digest": result.observed_digest,
                    "inputs": result.inputs,
                    "seconds": result.seconds,
                }
                for result in sorted(
                    self.results,
                    key=lambda r: os.path.basename(r.entry.path),
                )
            ],
        }


class CounterexampleCorpus:
    """A directory of replayable counterexample records.

    Concurrency-safe by construction: records are published atomically
    (temp file + ``os.replace``) and file names derive from the
    violation digest, so concurrent writers of the *same* evidence
    collapse onto one file and writers of different evidence never
    collide. Unreadable or foreign-version files degrade to SKIP
    entries — the corpus never crashes its consumers.
    """

    #: digest-prefix length of record file names; 16 hex chars keep
    #: names human-diffable while making accidental collisions of
    #: *distinct* digests vanishingly unlikely
    NAME_DIGEST_CHARS = 16

    def __init__(self, directory: str):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    # -- persistence ------------------------------------------------------

    def path_for(self, record: CorpusRecord) -> str:
        digest = record.expected_digest or hashlib.sha1(
            record.program_text.encode("utf-8")
        ).hexdigest()
        prefix = "" if not record.name else _slug(record.name) + "-"
        return os.path.join(
            self.directory,
            f"{prefix}{digest[: self.NAME_DIGEST_CHARS]}.json",
        )

    def add(self, record: CorpusRecord) -> Optional[str]:
        """Persist one record; returns its path, or ``None`` when an
        entry with the same digest already exists (dedup)."""
        path = self.path_for(record)
        if os.path.exists(path):
            return None
        blob = (
            json.dumps(record.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.chmod(tmp_path, 0o644)  # mkstemp defaults to 0600
            os.replace(tmp_path, path)  # atomic publication
        except Exception:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def add_violation(
        self,
        violation: Violation,
        config: FuzzerConfig,
        name: str = "",
        provenance: Optional[Mapping[str, object]] = None,
        confirmed: Optional[bool] = None,
    ) -> Optional[str]:
        """Convenience: build the record and persist it."""
        return self.add(
            record_from_violation(
                violation, config, name, provenance, confirmed
            )
        )

    # -- loading ----------------------------------------------------------

    def paths(self) -> List[str]:
        """Record files, sorted by name (deterministic replay order)."""
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        return [
            os.path.join(self.directory, name)
            for name in names
            if name.endswith(".json") and not name.startswith(".")
        ]

    def load(self) -> List[CorpusEntry]:
        """Load every record; unreadable ones become SKIP entries."""
        entries: List[CorpusEntry] = []
        for path in self.paths():
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                record = CorpusRecord.from_json(payload)
            except (OSError, ValueError, KeyError, TypeError,
                    AttributeError) as error:
                entries.append(
                    CorpusEntry(path=path, skip_reason=str(error))
                )
                continue
            entries.append(CorpusEntry(path=path, record=record))
        return entries

    def __len__(self) -> int:
        return len(self.paths())

    # -- replay -----------------------------------------------------------

    def replay_entry(
        self,
        entry: CorpusEntry,
        config_overrides: Optional[Mapping[str, object]] = None,
    ) -> ReplayResult:
        """Re-run one entry through the full testing pipeline.

        ``config_overrides`` are :class:`FuzzerConfig` field overrides
        (``battery_eval=False``, ``compile_programs=False``, …) applied
        on top of the record's coordinates — the knob matrix the
        determinism tests sweep. Detection must be knob-independent;
        the verdict digest proves it.
        """
        if entry.record is None:
            return ReplayResult(
                entry=entry,
                verdict=SKIP,
                detail=entry.skip_reason or "unreadable record",
            )
        record = entry.record
        if record.expected_verdict != "violation":
            return ReplayResult(
                entry=entry,
                verdict=SKIP,
                detail=(
                    f"unsupported expected verdict "
                    f"{record.expected_verdict!r}"
                ),
            )
        try:
            pipeline, program = self._build_pipeline(
                record, config_overrides
            )
        except (KeyError, ValueError) as error:
            # unregistered arch/contract/cpu, or unparseable program
            # text: the record outlived this build's registries
            return ReplayResult(entry=entry, verdict=SKIP,
                                detail=str(error))
        inputs = list(record.inputs)
        start = time.perf_counter()
        try:
            outcome = pipeline.test_program(program, inputs)
        except EmulationError as error:
            return ReplayResult(
                entry=entry,
                verdict=FAIL,
                seconds=time.perf_counter() - start,
                inputs=len(inputs),
                detail=f"emulation fault during replay: {error}",
            )
        violation = None
        for candidate in outcome.analysis.candidates:
            if not record.confirmed or pipeline.confirm_candidate(
                outcome, candidate
            ):
                violation = pipeline.build_violation(outcome, candidate)
                break
        seconds = time.perf_counter() - start
        if violation is None:
            return ReplayResult(
                entry=entry,
                verdict=FAIL,
                seconds=seconds,
                inputs=len(inputs),
                detail="no violation re-detected (detection-power "
                "regression)",
            )
        observed = violation_digest(
            violation, record.executor_mode, record.analyzer_mode
        )
        verdict = PASS if observed == record.expected_digest else CHANGED
        detail = (
            ""
            if verdict == PASS
            else (
                f"evidence drifted: expected digest "
                f"{record.expected_digest[:12]}, observed {observed[:12]}"
            )
        )
        return ReplayResult(
            entry=entry,
            verdict=verdict,
            observed_digest=observed,
            observed_classification=violation.classification,
            seconds=seconds,
            inputs=len(inputs),
            detail=detail,
        )

    def replay(
        self,
        config_overrides: Optional[Mapping[str, object]] = None,
        arch: Optional[str] = None,
        progress=None,
    ) -> ReplayReport:
        """Replay every record (optionally restricted to one arch)."""
        start = time.perf_counter()
        report = ReplayReport(corpus_dir=self.directory)
        for entry in self.load():
            if (
                arch is not None
                and entry.record is not None
                and entry.record.arch != arch
            ):
                continue
            result = self.replay_entry(entry, config_overrides)
            report.results.append(result)
            if progress is not None:
                progress(result)
        report.wall_seconds = time.perf_counter() - start
        return report

    @staticmethod
    def _build_pipeline(
        record: CorpusRecord,
        config_overrides: Optional[Mapping[str, object]] = None,
    ):
        """The (pipeline, parsed program) pair one record replays on."""
        from repro.arch import get_architecture
        from repro.core.fuzzer import TestingPipeline

        config = FuzzerConfig(
            arch=record.arch,
            contract_name=record.contract,
            cpu_preset=record.cpu,
            executor_mode=record.executor_mode,
            analyzer_mode=record.analyzer_mode,
            seed=record.seed,
        )
        if config_overrides:
            config = replace(config, **dict(config_overrides))
        arch = get_architecture(record.arch)
        program = arch.parse_program(
            record.program_text, name=record.name or "corpus-entry"
        )
        return TestingPipeline(config), program


def _slug(name: str) -> str:
    """File-name-safe slug of a record name."""
    return "".join(
        char if char.isalnum() or char in "-_" else "-"
        for char in name.lower()
    ).strip("-") or "entry"


__all__ = [
    "CHANGED",
    "FAIL",
    "FORMAT",
    "PASS",
    "SKIP",
    "CorpusEntry",
    "CorpusRecord",
    "CounterexampleCorpus",
    "ReplayReport",
    "ReplayResult",
    "decode_input",
    "encode_input",
    "record_from_violation",
    "violation_digest",
]
