#!/usr/bin/env python3
"""Validate a hardware-defence assumption with a custom contract (§6.4).

STT and KLEESpectre assume that stores do not modify the cache state
until they retire. Encoding the assumption as an observation clause that
hides speculative stores turns it into a testable contract: a CPU on
which speculative stores *do* evict cache lines violates it. The paper
found the assumption holds on Skylake but fails on Coffee Lake; this
example reproduces both verdicts and prints the Coffee Lake
counterexample.

Run:  python examples/validate_defence_assumption.py
"""

from repro import FuzzerConfig, fuzz


def validate(cpu_preset: str):
    # V4-patched models: the store-bypass leak would otherwise violate the
    # contract first and mask the store-eviction question (§6.4 tests the
    # patched CPUs for the same reason)
    config = FuzzerConfig(
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-NONSPEC-STORE-COND",
        cpu_preset=cpu_preset,
        num_test_cases=400,
        inputs_per_test_case=30,
        seed=3,
    )
    return fuzz(config)


def main() -> None:
    print('assumption under test: "stores do not modify the cache state '
          'until they retire" (STT, KLEESpectre)\n')
    for cpu_preset in ("skylake-v4-patched", "coffee-lake"):
        report = validate(cpu_preset)
        if report.found:
            print(f"{cpu_preset}: ASSUMPTION VIOLATED "
                  f"({report.test_cases} cases, "
                  f"{report.duration_seconds:.1f}s)")
            print(report.violation.describe())
            print()
        else:
            print(f"{cpu_preset}: assumption holds "
                  f"({report.test_cases} cases, "
                  f"{report.duration_seconds:.1f}s)\n")
    print("conclusion: defences relying on this assumption are sound on "
          "the Skylake model but not on Coffee Lake — matching §6.4.")
    print("(random discovery of the Coffee Lake violation can take many "
          "test cases; the deterministic reproduction is "
          "benchmarks/bench_sec64_store_eviction.py)")


if __name__ == "__main__":
    main()
