#!/usr/bin/env python3
"""Find a violation with the fuzzer, then minimize it (paper §5.7).

Reproduces the Figure 3 -> Figure 4 journey: a random test case that
violates CT-SEQ is shrunk to its essence — minimal priming sequence,
minimal instruction count, and LFENCE boundaries delimiting the exact
leak location.

Run:  python examples/minimize_counterexample.py
"""

from repro import Fuzzer, FuzzerConfig, Postprocessor, get_architecture


def main() -> None:
    config = FuzzerConfig(
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        num_test_cases=300,
        inputs_per_test_case=30,
        seed=7,
    )
    fuzzer = Fuzzer(config)
    print("searching for a violation ...")
    report = fuzzer.run()
    if not report.found:
        print("no violation found; increase the budget")
        return

    violation = report.violation
    print(f"\nfound: {violation.classification} after "
          f"{violation.test_cases_until_found} test cases\n")
    print("original test case (cf. Figure 3):")
    arch = get_architecture(violation.arch_name)
    print(arch.render_program(violation.program, numbered=True))

    print("\nminimizing (cf. Figure 4) ...")
    postprocessor = Postprocessor(fuzzer.pipeline)
    result = postprocessor.minimize(
        violation.program, list(violation.input_sequence)
    )

    print(f"\nminimized test case "
          f"({result.original_instruction_count} -> "
          f"{result.instruction_count} instructions, "
          f"{result.original_input_count} -> {len(result.inputs)} inputs, "
          f"{result.fences_inserted} fences):")
    print(result.text)
    print("\nleak location (the region not shielded by LFENCE):")
    for line in result.leak_region():
        print(f"  {line}")


if __name__ == "__main__":
    main()
