#!/usr/bin/env python3
"""Quickstart: fuzz a simulated Skylake against CT-SEQ and find Spectre V1.

This is the paper's headline experiment in miniature (Target 5): random
test cases from the AR+MEM+CB subset, Prime+Probe hardware traces, the
CT-SEQ contract as the leakage specification. Within a few dozen test
cases Revizor surfaces a violation whose inspection shows classic branch-
misprediction leakage — Spectre V1.

Run:  python examples/quickstart.py
"""

from repro import FuzzerConfig, fuzz


def main() -> None:
    config = FuzzerConfig(
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",          # "speculation exposes nothing"
        cpu_preset="skylake-v4-patched",  # SSBD on, so V1 is the only leak
        num_test_cases=200,
        inputs_per_test_case=30,
        seed=7,
    )

    print(f"fuzzing {config.cpu_preset} against {config.contract_name} "
          f"on {'+'.join(config.instruction_subsets)} ...")
    report = fuzz(config)

    print()
    print(report.summary())
    if report.found:
        print()
        print(report.violation.describe())
        only_a, only_b = report.violation.differing_signals()
        print()
        print(f"cache sets unique to each trace: {sorted(only_a)} vs {sorted(only_b)}")
    else:
        print("no violation found — try more test cases or another seed")


if __name__ == "__main__":
    main()
