#!/usr/bin/env python3
"""Tour the handwritten vulnerability gallery (paper Table 5 and §6.3).

Runs every known-vulnerability gadget through the detection pipeline on
its target CPU model and reports how many random inputs each needed —
the paper's Table 5 experiment — then demonstrates the V1-var latency
race of Figure 5 with crafted inputs.

Run:  python examples/spectre_gallery_tour.py
"""

from repro import FuzzerConfig, InputData, SandboxLayout, SpeculativeCPU, skylake
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.gallery import GALLERY, V1_VAR


def tour_table5() -> None:
    print("Table 5 tour: random inputs until a confirmed violation")
    for name, entry in GALLERY.items():
        if entry.analyzer_mode != "subset":
            continue  # the latency races get their own demo below
        config = FuzzerConfig(
            contract_name=entry.contract,
            cpu_preset=entry.cpu_preset,
            executor_mode=entry.executor_mode,
            seed=11,
        )
        pipeline = TestingPipeline(config)
        generator = InputGenerator(
            seed=7 if name == "a6-bypass-variant" else 42,
            entropy_bits=entry.entropy_bits,
            layout=pipeline.layout,
        )
        found = None
        count = 4
        while count <= 128 and found is None:
            if pipeline.check_violation(entry.program(), generator.generate(count),
                                        confirm=True):
                found = count
            count *= 2
        outcome = f"{found} inputs" if found else "not found (rare case)"
        print(f"  {name:22s} {entry.vulnerability:28s} "
              f"[{entry.contract} on {entry.cpu_preset}] -> {outcome}")


def demo_v1var_race() -> None:
    print("\nFigure 5 demo: the V1-var latency race (crafted inputs)")
    layout = SandboxLayout()
    linear = V1_VAR.program().linearize()
    for label, dividend in (("fast", 5), ("slow", (1 << 62) + 5)):
        cpu = SpeculativeCPU(skylake(), layout)
        cpu.cache.prime()
        cpu.run(linear, InputData(registers={"RAX": dividend, "RBX": 0}))
        trace = sorted(cpu.cache.probe())
        print(f"  {label} division (dividend={dividend:#x}): "
              f"cache trace {trace or '(empty)'} — "
              f"{'leak fired' if trace else 'squash won the race'}")
    print("  both inputs share the CT-COND contract trace: the division's")
    print("  *latency* leaks through the data cache (paper §6.3).")


def main() -> None:
    tour_table5()
    demo_v1var_race()


if __name__ == "__main__":
    main()
