#!/usr/bin/env python3
"""Audit a CPU model against a ladder of increasingly permissive contracts.

This reproduces the paper's methodology of §6.2: start from the most
restrictive contract (CT-SEQ: "speculation exposes nothing") and, every
time a violation is found, step to a contract that *permits* that leakage
class — gradually filtering out common violations and narrowing down on
subtle ones. The final surviving contract is a faithful leakage
specification of the CPU.

Run:  python examples/audit_cpu_against_contracts.py [preset]
      preset: skylake (default) | skylake-v4-patched | coffee-lake
"""

import sys

from repro import FuzzerConfig, fuzz

#: the audit ladder, ordered from restrictive to permissive
CONTRACT_LADDER = ("CT-SEQ", "CT-BPAS", "CT-COND", "CT-COND-BPAS")


def audit(cpu_preset: str) -> str:
    survivors = []
    for contract_name in CONTRACT_LADDER:
        config = FuzzerConfig(
            instruction_subsets=("AR", "MEM", "CB"),
            contract_name=contract_name,
            cpu_preset=cpu_preset,
            num_test_cases=150,
            inputs_per_test_case=30,
            seed=3,
        )
        report = fuzz(config)
        verdict = (
            f"VIOLATED ({report.violation.classification})"
            if report.found
            else "satisfied"
        )
        print(f"  {contract_name:14s} -> {verdict:24s} "
              f"[{report.test_cases} cases, {report.duration_seconds:.1f}s]")
        if not report.found:
            survivors.append(contract_name)
    return survivors[0] if survivors else "(none in the ladder)"


def main() -> None:
    cpu_preset = sys.argv[1] if len(sys.argv) > 1 else "skylake"
    print(f"auditing CPU model {cpu_preset!r} against the contract ladder\n")
    strongest = audit(cpu_preset)
    print(f"\nstrongest satisfied contract: {strongest}")
    print("interpretation: software hardened under this contract's "
          "assumptions is safe on this CPU model.")


if __name__ == "__main__":
    main()
